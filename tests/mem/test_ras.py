"""Memory RAS: config, injection, scrubbing, retirement, recovery ladder."""

import pytest

from repro.dnn.alloc import PageAlignedAllocator
from repro.dnn.ops import Op
from repro.dnn.tensor import Tensor, TensorKind
from repro.errors import UncorrectableMemoryError
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.mem.ras import RECOVERY_POLICIES, RASConfig, RasEngine

PAGE = OPTANE_HM.page_size


def place_slow(tensor, now):
    return DeviceKind.SLOW


def make_tensor(tid, nbytes=PAGE, preallocated=False):
    return Tensor(
        tid=tid,
        name=f"t{tid}",
        nbytes=nbytes,
        kind=TensorKind.WEIGHT if preallocated else TensorKind.ACTIVATION,
        preallocated=preallocated,
    )


def ras_machine(**overrides):
    """Machine with an enabled RAS engine (rates overridable per test)."""
    defaults = dict(seed=7, ue_rate=1e-9, ce_rate=1e-8)
    defaults.update(overrides)
    machine = Machine(OPTANE_HM, ras=RASConfig(**defaults))
    assert machine.ras is not None
    return machine


def allocate_one(machine, tensor, initialized=True):
    """Page-aligned alloc of one tensor; returns (allocator, mapping)."""
    alloc = PageAlignedAllocator(machine, place_slow)
    mapping = alloc.alloc(tensor, now=0.0)
    for share in mapping.shares:
        share.run.initialized = initialized
    return alloc, mapping


class TestRASConfig:
    def test_default_is_disabled(self):
        assert not RASConfig().enabled

    def test_any_rate_enables(self):
        assert RASConfig(ue_rate=1e-12).enabled
        assert RASConfig(ce_rate=1e-12).enabled
        assert RASConfig(transit_corruption_rate=0.01).enabled

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            RASConfig(ue_rate=-1.0)
        with pytest.raises(ValueError):
            RASConfig(scrub_bandwidth=-1.0)

    def test_transit_rate_must_be_a_probability(self):
        with pytest.raises(ValueError):
            RASConfig(transit_corruption_rate=1.0)

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            RASConfig(recovery="pray")

    def test_storm_threshold_positive(self):
        with pytest.raises(ValueError):
            RASConfig(ce_storm_threshold=0)

    def test_reseeded_changes_only_the_seed(self):
        config = RASConfig(seed=1, ue_rate=2e-9, recovery="refetch")
        other = config.reseeded(99)
        assert other.seed == 99
        assert other.ue_rate == config.ue_rate
        assert other.recovery == config.recovery

    def test_recovery_policies_ordered_weakest_first(self):
        assert RECOVERY_POLICIES == ("none", "refetch", "remat")


class TestMachineWiring:
    def test_no_config_builds_no_engine(self):
        assert Machine(OPTANE_HM).ras is None

    def test_disabled_config_builds_no_engine(self):
        assert Machine(OPTANE_HM, ras=RASConfig()).ras is None

    def test_enabled_config_builds_engine_and_wires_migration(self):
        machine = ras_machine()
        assert isinstance(machine.ras, RasEngine)
        assert machine.migration.ras is machine.ras


class TestInjection:
    def test_no_mapped_pages_no_errors(self):
        machine = ras_machine(ue_rate=1.0, ce_rate=1.0)
        machine.ras.age(10.0, 10.0)
        assert machine.ras.counts["ras.errors_injected"] == 0

    def test_errors_land_on_mapped_pages(self):
        machine = ras_machine(ue_rate=0.0, ce_rate=1e-2)
        allocate_one(machine, make_tensor(0, nbytes=8 * PAGE))
        machine.ras.age(1.0, 1.0)
        assert machine.ras.counts["ras.errors_injected"] > 0
        lo, hi = 0, 8
        assert all(lo <= vpn < hi for vpn in machine.ras.latent_errors)

    def test_same_seed_same_arrivals(self):
        snapshots = []
        for _ in range(2):
            machine = ras_machine(seed=42, ue_rate=1e-4, ce_rate=1e-3)
            allocate_one(machine, make_tensor(0, nbytes=16 * PAGE))
            machine.ras.age(1.0, 1.0)
            snapshots.append(
                (machine.ras.latent_errors, dict(machine.ras.counts))
            )
        assert snapshots[0] == snapshots[1]

    def test_latent_ue_never_downgraded_to_ce(self):
        machine = ras_machine()
        allocate_one(machine, make_tensor(0))
        machine.ras._latent[0] = "ue"
        # Hammer CEs onto the single mapped page: the UE must survive.
        machine.ras.config = RASConfig(seed=7, ce_rate=1e-4)
        machine.ras.age(1.0, 1.0)
        assert machine.ras.latent_errors[0] == "ue"


class TestScrubber:
    def test_patrol_scrub_corrects_latent_ces(self):
        machine = ras_machine(
            ue_rate=0.0, ce_rate=1e-3, scrub_bandwidth=float(PAGE)
        )
        allocate_one(machine, make_tensor(0, nbytes=4 * PAGE))
        machine.ras.age(1.0, 1.0)
        assert machine.ras.counts["ras.errors_injected"] > 0
        # Repeat CEs on one page collapse into a single latent entry, so
        # the patrol corrects one hit per distinct struck page.
        struck = len(machine.ras.latent_errors)
        assert struck > 0
        # One sweep period for 4 mapped pages at PAGE/s is 4 s; far past
        # that every latent CE must have been reached by the patrol read.
        machine.ras.age(0.0, 1e6)
        assert machine.ras.counts["ras.ce_scrubbed"] == struck
        assert machine.ras.latent_errors == {}

    def test_scrub_hit_increments_wear(self):
        machine = ras_machine(ce_rate=1e-3, scrub_bandwidth=float(PAGE))
        allocate_one(machine, make_tensor(0))
        machine.ras.age(1.0, 1.0)
        machine.ras.age(0.0, 1e6)
        assert sum(machine.ras._ce_wear.values()) == machine.ras.counts[
            "ras.ce_scrubbed"
        ]

    def test_no_bandwidth_no_scrubbing(self):
        machine = ras_machine(ce_rate=1e-3, scrub_bandwidth=0.0)
        allocate_one(machine, make_tensor(0, nbytes=4 * PAGE))
        machine.ras.age(1.0, 1.0)
        machine.ras.age(0.0, 1e6)
        assert machine.ras.counts["ras.ce_scrubbed"] == 0
        assert machine.ras.latent_errors  # still waiting for a demand read


class TestCheckAccess:
    def _prepared(self, preallocated=False, initialized=True, **overrides):
        machine = ras_machine(ue_rate=1e-9, ce_rate=0.0, **overrides)
        tensor = make_tensor(0, preallocated=preallocated)
        alloc, mapping = allocate_one(machine, tensor, initialized=initialized)
        producer = Op(name="conv", flops=2e9, layer_index=0)
        return machine, tensor, alloc, mapping, producer

    def test_clean_pages_cost_nothing(self):
        machine, tensor, alloc, mapping, producer = self._prepared()
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost == 0.0

    def test_latent_ce_corrected_in_place(self):
        machine, tensor, alloc, mapping, producer = self._prepared()
        vpn = mapping.shares[0].run.vpn
        machine.ras._latent[vpn] = "ce"
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost == 0.0
        assert machine.ras.counts["ras.ce_corrected"] == 1
        assert machine.ras.latent_errors == {}
        assert machine.ras._ce_wear[vpn] == 1

    def test_ue_remat_charges_producer_compute_and_retires(self):
        machine, tensor, alloc, mapping, producer = self._prepared()
        vpn = mapping.shares[0].run.vpn
        machine.ras._latent[vpn] = "ue"
        reserved_before = machine.slow.reserved
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost == pytest.approx(
            producer.flops / machine.platform.compute_throughput
        )
        assert machine.ras.counts["ras.remat_events"] == 1
        assert machine.ras.counts["ras.retired_frames"] == 1
        assert machine.ras.remat_bytes == tensor.nbytes
        # Containment: the frame is gone from the page table and withheld
        # from the device forever.
        assert vpn not in machine.page_table
        assert machine.slow.reserved == reserved_before + PAGE
        assert machine.ras.badblocks[machine.slow.spec.name] == [vpn]

    def test_ue_on_preallocated_tensor_refetches(self):
        machine, tensor, alloc, mapping, producer = self._prepared(
            preallocated=True
        )
        vpn = mapping.shares[0].run.vpn
        machine.ras._latent[vpn] = "ue"
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost > 0.0
        assert machine.ras.counts["ras.refetch_events"] == 1
        assert machine.ras.counts["ras.remat_events"] == 0
        assert machine.ras.refetch_time == pytest.approx(cost)

    def test_ue_on_uninitialized_page_is_a_free_drop(self):
        machine, tensor, alloc, mapping, producer = self._prepared(
            initialized=False
        )
        machine.ras._latent[mapping.shares[0].run.vpn] = "ue"
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost == 0.0
        assert machine.ras.counts["ras.clean_drops"] == 1

    def test_recovery_none_raises_immediately(self):
        machine, tensor, alloc, mapping, producer = self._prepared(
            recovery="none"
        )
        machine.ras._latent[mapping.shares[0].run.vpn] = "ue"
        with pytest.raises(UncorrectableMemoryError):
            machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)

    def test_exhausted_ladder_raises(self):
        # Volatile tensor, no producer to re-run: nothing can rebuild it.
        machine, tensor, alloc, mapping, _ = self._prepared()
        machine.ras._latent[mapping.shares[0].run.vpn] = "ue"
        with pytest.raises(UncorrectableMemoryError):
            machine.ras.check_access(tensor, mapping, 0.0, None, alloc)

    def test_refetch_policy_cannot_rebuild_volatile_data(self):
        machine, tensor, alloc, mapping, producer = self._prepared(
            recovery="refetch"
        )
        machine.ras._latent[mapping.shares[0].run.vpn] = "ue"
        with pytest.raises(UncorrectableMemoryError):
            machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)

    def test_in_flight_runs_are_skipped(self):
        machine, tensor, alloc, mapping, producer = self._prepared()
        run = mapping.shares[0].run
        machine.ras._latent[run.vpn] = "ue"
        run.begin_migration(DeviceKind.FAST, available_at=5.0)
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost == 0.0
        assert machine.ras.latent_errors == {run.vpn: "ue"}

    def test_two_ues_on_one_access_split_consistently(self):
        machine = ras_machine()
        tensor = make_tensor(0, nbytes=4 * PAGE)
        alloc, mapping = allocate_one(machine, tensor)
        producer = Op(name="conv", flops=1e9, layer_index=0)
        run = mapping.shares[0].run
        machine.ras._latent[run.vpn + 1] = "ue"
        machine.ras._latent[run.vpn + 3] = "ue"
        cost = machine.ras.check_access(tensor, mapping, 0.0, producer, alloc)
        assert cost > 0.0
        assert machine.ras.counts["ras.retired_frames"] == 2
        table = machine.page_table
        assert table.run_containing(run.vpn + 1) is None
        assert table.run_containing(run.vpn + 3) is None
        # Survivors stay mapped: pages 0 and 2 of the original run.
        assert table.run_containing(run.vpn) is not None
        assert table.run_containing(run.vpn + 2) is not None


class TestCEStorm:
    def test_worn_page_escalates_ce_to_ue(self):
        machine = ras_machine(ue_rate=0.0, ce_rate=1e-2)
        allocate_one(machine, make_tensor(0))  # one mapped page: vpn 0
        machine.ras._ce_wear[0] = machine.ras.config.ce_storm_threshold
        machine.ras.age(1.0, 1.0)
        assert machine.ras.counts["ras.errors_injected"] > 0
        assert machine.ras.counts["ras.ce_storm_escalations"] > 0
        assert machine.ras.latent_errors[0] == "ue"


class TestTransitGate:
    def test_zero_rate_is_free(self):
        machine = ras_machine()
        when = machine.ras.transit_gate(machine.promote_channel, PAGE, 1.0, None)
        assert when == 1.0
        assert machine.ras.counts["ras.transit_retries"] == 0

    def test_corruption_burns_channel_time_and_retries(self):
        machine = ras_machine(transit_corruption_rate=0.9, ue_rate=0.0)
        when = machine.ras.transit_gate(
            machine.promote_channel, 64 * PAGE, 0.0, "test"
        )
        retries = machine.ras.counts["ras.transit_retries"]
        assert retries > 0
        assert when > 0.0
        assert machine.promote_channel.aborted_transfers == retries

    def test_deterministic_across_engines(self):
        outcomes = []
        for _ in range(2):
            machine = ras_machine(transit_corruption_rate=0.5, ue_rate=0.0)
            when = machine.ras.transit_gate(
                machine.promote_channel, PAGE, 0.0, None
            )
            outcomes.append((when, machine.ras.counts["ras.transit_retries"]))
        assert outcomes[0] == outcomes[1]


class TestMigrationScrub:
    def test_commit_corrects_latent_ces_but_ues_travel(self):
        machine = ras_machine()
        run = machine.map_run(2, DeviceKind.SLOW)
        machine.ras._latent[run.vpn] = "ce"
        machine.ras._latent[run.vpn + 1] = "ue"
        transfer, scheduled, skipped = machine.migration.promote([run], now=0.0)
        assert transfer is not None and not skipped
        machine.migration.sync(transfer.finish + 1.0)
        assert machine.ras.counts["ras.ce_migration_corrected"] == 1
        # The UE is forwarded poison: still latent on the moved data.
        assert machine.ras.latent_errors == {run.vpn + 1: "ue"}
