"""Property tests for page-table surgery around RAS page retirement.

Retirement carves a single dead page out of a mapped run: split the run so
one entry covers exactly the struck page, unmap that entry, and keep every
surviving page mapped with its state intact.  These properties pin the
invariants the RAS engine leans on — whatever the run size, strike offset,
or pre-existing fragmentation:

* the sorted-start interval index stays consistent;
* ``mapped_pages`` drops by exactly one page per retirement;
* survivors tile the original span with only the dead pages missing;
* split inheritance carries placement/poison/pin/initialized state.

Skipped wholesale when hypothesis is unavailable (it is an optional test
dependency; the simulator itself never imports it).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.mem.devices import DeviceKind  # noqa: E402
from repro.mem.page import PageTable  # noqa: E402


def retire(table, vpn):
    """The RAS engine's surgery: isolate page ``vpn`` in its own run, unmap it."""
    run = table.run_containing(vpn)
    assert run is not None and not run.in_flight
    if vpn > run.vpn:
        run = table.split(run.vpn, vpn - run.vpn)
    if run.npages > 1:
        table.split(run.vpn, 1)
    return table.unmap(vpn)


def assert_index_consistent(table):
    starts = table._starts
    assert starts == sorted(starts)
    assert set(starts) == set(e.vpn for e in table.entries())
    spans = sorted((e.vpn, e.npages) for e in table.entries())
    for (vpn, npages), (next_vpn, _) in zip(spans, spans[1:]):
        assert vpn + npages <= next_vpn  # no overlap


class TestRetirementProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        npages=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    def test_repeated_retirement_conserves_survivors(self, npages, data):
        table = PageTable()
        run = table.map_run(npages, DeviceKind.SLOW)
        base, total = run.vpn, npages
        strikes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=npages - 1),
                min_size=1,
                max_size=npages,
                unique=True,
            )
        )
        for offset in strikes:
            dead = retire(table, base + offset)
            assert dead.npages == 1 and dead.vpn == base + offset
            assert_index_consistent(table)
        assert table.mapped_pages == total - len(strikes)
        survivors = set()
        for entry in table.entries():
            survivors.update(range(entry.vpn, entry.vpn + entry.npages))
        expected = set(range(base, base + total)) - {
            base + off for off in strikes
        }
        assert survivors == expected
        for offset in strikes:
            assert table.run_containing(base + offset) is None

    @settings(max_examples=60, deadline=None)
    @given(
        npages=st.integers(min_value=2, max_value=64),
        offset=st.data(),
        poisoned=st.booleans(),
        pinned=st.booleans(),
        initialized=st.booleans(),
    )
    def test_survivors_inherit_run_state(
        self, npages, offset, poisoned, pinned, initialized
    ):
        table = PageTable()
        run = table.map_run(npages, DeviceKind.FAST)
        run.poisoned = poisoned
        run.pinned = pinned
        run.initialized = initialized
        strike = offset.draw(st.integers(min_value=0, max_value=npages - 1))
        retire(table, run.vpn + strike)
        remaining = list(table.entries())
        assert remaining  # npages >= 2, so someone survives
        for entry in remaining:
            assert entry.device is DeviceKind.FAST
            assert entry.poisoned == poisoned
            assert entry.pinned == pinned
            assert entry.initialized == initialized

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=8), min_size=1, max_size=6
        ),
        data=st.data(),
    )
    def test_retirement_in_fragmented_table(self, sizes, data):
        table = PageTable()
        runs = [table.map_run(n, DeviceKind.SLOW) for n in sizes]
        victim = data.draw(st.sampled_from(runs))
        strike = data.draw(
            st.integers(min_value=0, max_value=victim.npages - 1)
        )
        before = table.mapped_pages
        retire(table, victim.vpn + strike)
        assert table.mapped_pages == before - 1
        assert_index_consistent(table)
        # Every other run is untouched.
        for run, size in zip(runs, sizes):
            if run is victim:
                continue
            assert table.run_containing(run.vpn) is not None
