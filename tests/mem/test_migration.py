"""Migration engine: async promotion/demotion, capacity accounting,
splitting, discard/materialize."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.devices import DeviceKind, DeviceSpec, MemoryDevice
from repro.mem.migration import MigrationEngine
from repro.mem.page import PageTable
from repro.sim.channel import BandwidthChannel

PAGE = 4096


def make_engine(fast_pages=16, slow_pages=1024, promote_bw=1e6, demote_bw=5e5):
    table = PageTable(page_size=PAGE)
    fast = MemoryDevice(
        DeviceSpec("fast", fast_pages * PAGE, 1e9, 1e9), DeviceKind.FAST
    )
    slow = MemoryDevice(
        DeviceSpec("slow", slow_pages * PAGE, 1e8, 1e8), DeviceKind.SLOW
    )
    engine = MigrationEngine(
        table,
        fast,
        slow,
        BandwidthChannel(promote_bw, "promote"),
        BandwidthChannel(demote_bw, "demote"),
    )
    return table, fast, slow, engine


def map_on(table, device, npages, fast, slow):
    run = table.map_run(npages, device)
    (fast if device is DeviceKind.FAST else slow).allocate(npages * PAGE)
    return run


class TestPromote:
    def test_promote_reserves_fast_at_submit(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert scheduled == [run]
        assert skipped == []
        assert fast.used == 4 * PAGE
        assert slow.used == 0
        assert run.in_flight
        assert run.device is DeviceKind.SLOW  # not committed yet

    def test_sync_commits_after_finish(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, _, _ = engine.promote([run], now=0.0)
        engine.sync(transfer.finish)
        assert run.device is DeviceKind.FAST
        assert not run.in_flight

    def test_promote_skips_fast_resident(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 2, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert transfer is None
        assert scheduled == [] and skipped == []

    def test_promote_skips_pinned(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 2, fast, slow)
        run.pinned = True
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert transfer is None
        assert skipped == [run]

    def test_promote_splits_at_capacity_boundary(self):
        table, fast, slow, engine = make_engine(fast_pages=4)
        run = map_on(table, DeviceKind.SLOW, 10, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert len(scheduled) == 1
        assert scheduled[0].npages == 4
        assert len(skipped) == 1
        assert skipped[0].npages == 6
        assert fast.used == 4 * PAGE

    def test_boundary_split_mid_list_fills_fast_exactly(self):
        """The run straddling the limit splits; later runs are skipped whole."""
        table, fast, slow, engine = make_engine(fast_pages=6)
        first = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        straddler = map_on(table, DeviceKind.SLOW, 5, fast, slow)
        late = map_on(table, DeviceKind.SLOW, 3, fast, slow)
        transfer, scheduled, skipped = engine.promote(
            [first, straddler, late], now=0.0
        )
        assert [r.npages for r in scheduled] == [4, 2]
        assert fast.used == 6 * PAGE  # filled to the last page
        assert sum(r.npages for r in skipped) == 3 + 3  # tail + late run
        assert late in skipped

    def test_split_tail_keeps_slow_accounting(self):
        table, fast, slow, engine = make_engine(fast_pages=4)
        run = map_on(table, DeviceKind.SLOW, 10, fast, slow)
        engine.promote([run], now=0.0)
        # 4 pages reserved on fast (in flight), 6-page tail still on slow.
        assert fast.used == 4 * PAGE
        assert slow.used == 6 * PAGE
        assert sum(e.npages for e in table.entries()) == 10

    def test_promote_duplicate_request_deduped(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 2, fast, slow)
        transfer, scheduled, _ = engine.promote([run, run], now=0.0)
        assert scheduled == [run]

    def test_urgent_uses_demand_channel(self):
        table = PageTable(page_size=PAGE)
        fast = MemoryDevice(DeviceSpec("f", 64 * PAGE, 1e9, 1e9), DeviceKind.FAST)
        slow = MemoryDevice(DeviceSpec("s", 64 * PAGE, 1e8, 1e8), DeviceKind.SLOW)
        demand = BandwidthChannel(1e6, "demand")
        engine = MigrationEngine(
            table,
            fast,
            slow,
            BandwidthChannel(1e6, "promote"),
            BandwidthChannel(1e6, "demote"),
            demand_channel=demand,
        )
        backlog = map_on(table, DeviceKind.SLOW, 8, fast, slow)
        engine.promote([backlog], now=0.0)  # clogs the prefetch channel
        urgent = map_on(table, DeviceKind.SLOW, 1, fast, slow)
        transfer, _, _ = engine.promote([urgent], now=0.0, urgent=True)
        assert transfer.start == 0.0  # did not queue behind the backlog


class TestDemote:
    def test_fast_freed_only_at_commit(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        transfer, scheduled = engine.demote([run], now=0.0)
        assert scheduled == [run]
        assert fast.used == 4 * PAGE  # still held during the copy
        assert slow.used == 4 * PAGE  # destination reserved
        engine.sync(transfer.finish)
        assert fast.used == 0
        assert run.device is DeviceKind.SLOW

    def test_demote_skips_slow_and_inflight(self):
        table, fast, slow, engine = make_engine()
        slow_run = map_on(table, DeviceKind.SLOW, 2, fast, slow)
        transfer, scheduled = engine.demote([slow_run], now=0.0)
        assert transfer is None and scheduled == []


class TestRoundTrip:
    def test_promote_then_demote_conserves_capacity(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        t1, _, _ = engine.promote([run], now=0.0)
        engine.sync(t1.finish)
        t2, _ = engine.demote([run], now=t1.finish)
        engine.sync(t2.finish)
        assert fast.used == 0
        assert slow.used == 4 * PAGE
        assert run.device is DeviceKind.SLOW

    @settings(max_examples=25, deadline=None)
    @given(moves=st.lists(st.booleans(), min_size=1, max_size=20))
    def test_alternating_migrations_conserve_bytes(self, moves):
        """After draining, exactly one device holds the run."""
        table, fast, slow, engine = make_engine(fast_pages=64)
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        now = 0.0
        for promote in moves:
            engine.sync(now)
            if promote:
                transfer, _, _ = engine.promote([run], now)
            else:
                transfer, _ = engine.demote([run], now)
            if transfer is not None:
                now = transfer.finish
        engine.sync(now)
        total = fast.used + slow.used
        assert total == 4 * PAGE
        holder = fast if run.device is DeviceKind.FAST else slow
        assert holder.used == 4 * PAGE


class TestReleaseRun:
    def test_release_settles_inflight_promote(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        engine.promote([run], now=0.0)
        engine.release_run(run, now=0.0)
        assert fast.used == 0
        assert slow.used == 0

    def test_release_settles_inflight_demote(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        engine.demote([run], now=0.0)
        engine.release_run(run, now=0.0)
        assert fast.used == 0
        assert slow.used == 0

    def test_release_resident_run(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 2, fast, slow)
        engine.release_run(run, now=0.0)
        assert fast.used == 0


class TestDiscardMaterialize:
    def test_discard_frees_fast_instantly_without_channel_traffic(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        engine.discard(run, now=0.0)
        assert fast.used == 0
        assert slow.used == 4 * PAGE
        assert run.device is DeviceKind.SLOW
        assert engine.demote_channel.bytes_moved == 0

    def test_materialize_restores_to_fast(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        engine.discard(run, now=0.0)
        assert engine.materialize(run, now=0.0)
        assert run.device is DeviceKind.FAST
        assert fast.used == 4 * PAGE
        assert engine.promote_channel.bytes_moved == 0

    def test_materialize_fails_when_full(self):
        table, fast, slow, engine = make_engine(fast_pages=4)
        run = map_on(table, DeviceKind.SLOW, 2, fast, slow)
        fast.allocate(3 * PAGE)
        assert not engine.materialize(run, now=0.0)
        assert run.device is DeviceKind.SLOW

    def test_discard_inflight_rejected(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.FAST, 2, fast, slow)
        engine.demote([run], now=0.0)
        with pytest.raises(ValueError):
            engine.discard(run, now=0.0)


class TestConcurrentDirections:
    def test_promote_and_demote_proceed_in_parallel(self):
        """Two helper threads: opposite directions do not queue behind each
        other (paper §VI)."""
        table, fast, slow, engine = make_engine()
        up = map_on(table, DeviceKind.SLOW, 8, fast, slow)
        down = map_on(table, DeviceKind.FAST, 8, fast, slow)
        t_up, _, _ = engine.promote([up], now=0.0)
        t_down, _ = engine.demote([down], now=0.0)
        assert t_up.start == 0.0
        assert t_down.start == 0.0

    def test_inflight_run_skipped_by_opposite_direction(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        engine.promote([run], now=0.0)
        transfer, scheduled = engine.demote([run], now=0.0)
        assert transfer is None and scheduled == []

    def test_release_during_queued_transfer_settles_books(self):
        table, fast, slow, engine = make_engine(promote_bw=1e3)  # slow channel
        first = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        second = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        engine.promote([first], now=0.0)
        engine.promote([second], now=0.0)  # queued behind first
        engine.release_run(second, now=0.0)
        table.unmap(second.vpn)
        engine.sync(float("inf"))
        # Only the first run's pages remain charged anywhere.
        assert fast.used == 4 * PAGE
        assert slow.used == 0


class TestQueries:
    def test_in_flight_bytes_and_drain_time(self):
        table, fast, slow, engine = make_engine()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, _, _ = engine.promote([run], now=0.0)
        assert engine.in_flight_bytes(0.0) == 4 * PAGE
        assert engine.drain_time(0.0) == transfer.finish
        engine.sync(transfer.finish)
        assert engine.in_flight_bytes(transfer.finish) == 0

    def test_per_run_submission_helpers(self):
        table, fast, slow, engine = make_engine()
        runs = [map_on(table, DeviceKind.SLOW, 1, fast, slow) for _ in range(3)]
        transfers = engine.promote_each(runs, now=0.0)
        assert len(transfers) == 3
        # Each successive transfer finishes strictly later (FIFO pipeline).
        finishes = [t.finish for t in transfers]
        assert finishes == sorted(finishes)
        assert len(set(finishes)) == 3
