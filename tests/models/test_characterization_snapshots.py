"""Per-model characterization snapshots.

Coarse expected ranges for each zoo model's memory profile.  These are the
regression net for the model builders: a change that silently shifts a
model's tensor population (and therefore every benchmark built on it) fails
here first, with a message naming the drifted quantity.
"""

import pytest

from repro.models import MODELS, build_model

PAGE = 4096

#: name -> (layers range, tensors range, peak GiB range at small batch,
#:          short-lived fraction range, weight share of peak range)
SNAPSHOTS = {
    "resnet32": ((60, 72), (900, 1050), (3.0, 4.0), (0.74, 0.86), (0.0, 0.02)),
    "resnet200": ((130, 150), (2300, 2700), (3.5, 4.6), (0.70, 0.82), (0.08, 0.18)),
    "bert-base": ((48, 58), (780, 900), (1.5, 2.1), (0.74, 0.86), (0.38, 0.55)),
    "bert-large": ((95, 108), (1500, 1750), (5.4, 6.8), (0.74, 0.86), (0.33, 0.50)),
    "lstm": ((98, 112), (1350, 1550), (0.55, 0.85), (0.80, 0.92), (0.32, 0.50)),
    "mobilenet": ((52, 62), (680, 790), (1.5, 2.2), (0.70, 0.84), (0.01, 0.06)),
    "dcgan": ((26, 33), (390, 470), (0.75, 1.1), (0.72, 0.86), (0.12, 0.28)),
    "gpt-small": ((48, 58), (670, 780), (1.9, 2.6), (0.72, 0.86), (0.45, 0.62)),
    "gpt-medium": ((95, 108), (1300, 1500), (5.8, 7.5), (0.72, 0.86), (0.38, 0.54)),
}


@pytest.mark.parametrize("name", sorted(SNAPSHOTS))
class TestSnapshots:
    @pytest.fixture()
    def graph(self, name):
        return MODELS[name].build(scale="small")

    def test_layer_count(self, name, graph):
        low, high = SNAPSHOTS[name][0]
        assert low <= graph.num_layers <= high, (
            f"{name}: {graph.num_layers} layers outside [{low}, {high}]"
        )

    def test_tensor_count(self, name, graph):
        low, high = SNAPSHOTS[name][1]
        assert low <= len(graph.tensors) <= high, (
            f"{name}: {len(graph.tensors)} tensors outside [{low}, {high}]"
        )

    def test_peak_memory(self, name, graph):
        low, high = SNAPSHOTS[name][2]
        peak_gib = graph.peak_memory_bytes() / 2**30
        assert low <= peak_gib <= high, (
            f"{name}: peak {peak_gib:.2f} GiB outside [{low}, {high}]"
        )

    def test_short_lived_fraction(self, name, graph):
        low, high = SNAPSHOTS[name][3]
        fraction = sum(t.short_lived for t in graph.tensors) / len(graph.tensors)
        assert low <= fraction <= high, (
            f"{name}: short-lived fraction {fraction:.2f} outside [{low}, {high}]"
        )

    def test_weight_share_of_peak(self, name, graph):
        low, high = SNAPSHOTS[name][4]
        weights = sum(t.nbytes for t in graph.preallocated())
        share = weights / graph.peak_memory_bytes()
        assert low <= share <= high, (
            f"{name}: weight share {share:.2f} outside [{low}, {high}]"
        )


class TestSnapshotCoverage:
    def test_every_zoo_model_has_a_snapshot(self):
        assert set(SNAPSHOTS) == set(MODELS)
