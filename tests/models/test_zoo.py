"""Model registry."""

import pytest

from repro.models.zoo import MODELS, build_model


class TestZoo:
    def test_expected_families_registered(self):
        for name in (
            "resnet32",
            "resnet200",
            "bert-base",
            "bert-large",
            "lstm",
            "mobilenet",
            "dcgan",
        ):
            assert name in MODELS

    def test_build_by_scale(self):
        small = build_model("resnet32", scale="small")
        large = build_model("resnet32", scale="large")
        assert small.batch_size == MODELS["resnet32"].small_batch
        assert large.batch_size == MODELS["resnet32"].large_batch

    def test_explicit_batch_overrides_scale(self):
        graph = build_model("lstm", batch_size=3)
        assert graph.batch_size == 3

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("alexnet")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_model("lstm", scale="medium")

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            build_model("lstm", batch_size=0)

    def test_large_batches_exceed_small(self):
        for spec in MODELS.values():
            assert spec.large_batch > spec.small_batch
