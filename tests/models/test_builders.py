"""Model zoo: structural validity and the paper's characterization traits."""

import pytest

from repro.dnn.graph import Phase
from repro.dnn.tensor import TensorKind
from repro.models import MODELS, build_model
from repro.models.resnet import build_cifar_resnet, build_imagenet_resnet, build_resnet
from repro.models.bert import build_bert
from repro.models.lstm import build_lstm
from repro.models.mobilenet import build_mobilenet
from repro.models.dcgan import build_dcgan

PAGE = 4096

ALL_MODELS = sorted(MODELS)


@pytest.fixture(scope="module")
def graphs():
    return {name: MODELS[name].build(scale="small") for name in ALL_MODELS}


class TestStructure:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_builds_and_has_both_phases(self, graphs, name):
        graph = graphs[name]
        phases = {layer.phase for layer in graph.layers}
        assert phases == {Phase.FORWARD, Phase.BACKWARD}

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_forward_precedes_backward(self, graphs, name):
        graph = graphs[name]
        first_backward = min(
            l.index for l in graph.layers if l.phase is Phase.BACKWARD
        )
        assert all(
            l.phase is Phase.FORWARD
            for l in graph.layers
            if l.index < first_backward
        )

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_every_layer_has_ops(self, graphs, name):
        assert all(layer.ops for layer in graphs[name].layers)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_peak_positive_and_batch_scales_it(self, name):
        spec = MODELS[name]
        small = spec.build(batch_size=max(1, spec.small_batch // 2))
        large = spec.build(batch_size=spec.small_batch)
        assert 0 < small.peak_memory_bytes() < large.peak_memory_bytes()

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_weights_are_preallocated(self, graphs, name):
        graph = graphs[name]
        weights = [t for t in graph.tensors if t.kind is TensorKind.WEIGHT]
        assert weights
        assert all(w.preallocated for w in weights)


class TestCharacterization:
    """The zoo must reproduce the paper's Observations 1 and 2."""

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_most_tensors_short_lived(self, graphs, name):
        graph = graphs[name]
        short = [t for t in graph.tensors if t.short_lived]
        assert len(short) / len(graph.tensors) > 0.7

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_most_short_lived_are_small(self, graphs, name):
        graph = graphs[name]
        short = [t for t in graph.tensors if t.short_lived]
        small = [t for t in short if t.nbytes < PAGE]
        assert len(small) / len(short) > 0.85

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_hot_tensors_exist_and_are_tiny_in_bytes(self, graphs, name):
        graph = graphs[name]
        hot = [t for t in graph.tensors if t.total_touches > 100]
        assert hot, "every model must have a >100-access hot set"
        total = sum(t.nbytes for t in graph.tensors)
        assert sum(t.nbytes for t in hot) / total < 0.05

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_long_lived_intermediates_span_to_backward(self, graphs, name):
        graph = graphs[name]
        spanning = [
            t
            for t in graph.step_tensors()
            if t.free_layer is not None
            and graph.layers[t.alloc_layer].phase is Phase.FORWARD
            and graph.layers[t.free_layer].phase is Phase.BACKWARD
        ]
        assert spanning, "saved activations must cross the fwd/bwd boundary"


class TestResNet:
    def test_depth_dispatch(self):
        assert build_resnet(32, 8).metadata["model_family"] == "resnet-cifar"
        assert build_resnet(50, 2).metadata["model_family"] == "resnet-imagenet"

    def test_unknown_depth_rejected(self):
        with pytest.raises(ValueError):
            build_resnet(33, 8)
        with pytest.raises(ValueError):
            build_cifar_resnet(50, 8)
        with pytest.raises(ValueError):
            build_imagenet_resnet(32, 8)

    def test_cifar_depth_scales_layers(self):
        shallow = build_cifar_resnet(20, 8)
        deep = build_cifar_resnet(110, 8)
        assert deep.num_layers > shallow.num_layers
        assert deep.peak_memory_bytes() > shallow.peak_memory_bytes()

    def test_resnet32_has_about_32_forward_conv_layers(self):
        graph = build_cifar_resnet(32, 8)
        convs = [
            l
            for l in graph.layers
            if l.phase is Phase.FORWARD and "c" in l.name and l.name != "loss"
        ]
        assert 30 <= len(convs) <= 34


class TestLSTM:
    def test_marked_recurrent(self):
        assert build_lstm(4).metadata["recurrent"]

    def test_shared_weights_are_hot(self):
        graph = build_lstm(4, seq=50)
        gate = graph.tensor("cell.w")
        assert gate.total_touches > 100

    def test_seq_validation(self):
        with pytest.raises(ValueError):
            build_lstm(4, seq=1)


class TestBert:
    def test_variants(self):
        base = build_bert("bert-base", 2)
        large = build_bert("bert-large", 2)
        assert large.num_layers > base.num_layers
        assert large.peak_memory_bytes() > base.peak_memory_bytes()

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_bert("bert-huge", 2)


class TestMobileNetDCGAN:
    def test_mobilenet_width_multiplier(self):
        thin = build_mobilenet(4, width_mult=0.5)
        full = build_mobilenet(4, width_mult=1.0)
        assert thin.peak_memory_bytes() < full.peak_memory_bytes()
        with pytest.raises(ValueError):
            build_mobilenet(4, width_mult=0)

    def test_dcgan_has_generator_and_discriminator(self):
        graph = build_dcgan(4)
        names = [l.name for l in graph.layers]
        assert any(n.startswith("gen") for n in names)
        assert any(n.startswith("disc") for n in names)
        with pytest.raises(ValueError):
            build_dcgan(4, base_channels=0)
