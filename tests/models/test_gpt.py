"""GPT decoder: structure and the weight-dominated memory profile."""

import pytest

from repro.harness.runner import run_policy
from repro.models import build_model
from repro.models.gpt import GPT_CONFIGS, build_gpt


class TestGPTStructure:
    def test_variants_scale(self):
        small = build_gpt("gpt-small", 2)
        medium = build_gpt("gpt-medium", 2)
        assert medium.num_layers > small.num_layers
        assert medium.peak_memory_bytes() > small.peak_memory_bytes()

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_gpt("gpt-xl", 2)

    def test_registered_in_zoo(self):
        graph = build_model("gpt-small", batch_size=2)
        assert graph.metadata["model_family"] == "gpt"

    def test_weight_dominated_profile(self):
        """The defining trait: parameters are a large share of peak at
        small batch — the opposite of MobileNet's activation dominance."""
        gpt = build_model("gpt-small", batch_size=4)
        mobilenet = build_model("mobilenet", batch_size=4)

        def weight_share(graph):
            weights = sum(t.nbytes for t in graph.preallocated())
            return weights / graph.peak_memory_bytes()

        assert weight_share(gpt) > 0.4
        assert weight_share(gpt) > 2 * weight_share(mobilenet)

    def test_attention_and_mlp_are_separate_layers(self):
        graph = build_gpt("gpt-small", 2)
        names = [layer.name for layer in graph.layers]
        assert "blk0.attn" in names
        assert "blk0.mlp" in names


class TestGPTUnderSentinel:
    def test_sentinel_manages_weight_cycling(self):
        """With fast memory below the weight footprint, Sentinel must cycle
        parameter blocks through fast memory and still beat slow-only."""
        slow = run_policy("slow-only", model="gpt-small", batch_size=4)
        sentinel = run_policy(
            "sentinel", model="gpt-small", batch_size=4, fast_fraction=0.25
        )
        assert sentinel.step_time < slow.step_time
        assert sentinel.migrated_bytes > 0

    def test_close_to_fast_only_at_modest_fraction(self):
        fast = run_policy("fast-only", model="gpt-small", batch_size=4)
        sentinel = run_policy(
            "sentinel", model="gpt-small", batch_size=4, fast_fraction=0.3
        )
        assert sentinel.step_time <= fast.step_time * 1.6
