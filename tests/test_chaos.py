"""Fault injection and invariant auditing (the chaos layer).

Covers the three contract pillars: determinism (same seed, same faults),
pay-for-what-you-use (zero rates touch nothing), and graceful degradation
(the engine retries/rolls back instead of raising).
"""

import dataclasses

import pytest

from repro.chaos import ChaosConfig, FaultInjector, InvariantAuditor
from repro.dnn.executor import Executor
from repro.errors import ConsistencyError
from repro.mem.devices import DeviceKind, DeviceSpec, MemoryDevice
from repro.mem.machine import Machine
from repro.mem.migration import MigrationEngine
from repro.mem.page import PageTable
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model
from repro.sim.channel import BandwidthChannel

PAGE = 4096


class TestChaosConfig:
    def test_defaults_are_disabled(self):
        config = ChaosConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "field",
        [
            "migration_busy_rate",
            "migration_abort_rate",
            "device_throttle_rate",
            "profile_drop_rate",
        ],
    )
    def test_rates_outside_unit_interval_rejected(self, field):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            ChaosConfig(**{field: -0.1})

    def test_throttle_factor_bounds(self):
        with pytest.raises(ValueError):
            ChaosConfig(device_throttle_factor=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(device_throttle_factor=1.5)

    def test_abort_fraction_open_interval(self):
        with pytest.raises(ValueError):
            ChaosConfig(abort_fraction=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(abort_fraction=1.0)

    def test_negative_retry_knobs_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ChaosConfig(retry_backoff=-1e-6)

    def test_uniform_spreads_the_headline_rate(self):
        config = ChaosConfig.uniform(0.2, seed=7)
        assert config.seed == 7
        assert config.migration_busy_rate == 0.2
        assert config.migration_abort_rate == 0.1
        assert config.device_throttle_rate == 0.2
        assert config.profile_drop_rate == 0.2
        assert config.enabled

    def test_uniform_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ChaosConfig.uniform(1.2)

    def test_uniform_accepts_overrides(self):
        config = ChaosConfig.uniform(0.2, migration_abort_rate=0.0)
        assert config.migration_abort_rate == 0.0
        assert config.migration_busy_rate == 0.2

    def test_reseeded_changes_only_the_seed(self):
        config = ChaosConfig.uniform(0.2, seed=1)
        other = config.reseeded(99)
        assert other.seed == 99
        assert dataclasses.replace(other, seed=1) == config


class TestFaultInjectorDeterminism:
    def test_same_seed_same_draw_sequence(self):
        config = ChaosConfig(seed=42, migration_busy_rate=0.5)
        a = FaultInjector(config)
        b = FaultInjector(config)
        assert [a.migration_busy() for _ in range(200)] == [
            b.migration_busy() for _ in range(200)
        ]
        assert a.counts == b.counts

    def test_different_seeds_differ(self):
        base = ChaosConfig(migration_busy_rate=0.5)
        a = FaultInjector(base.reseeded(1))
        b = FaultInjector(base.reseeded(2))
        assert [a.migration_busy() for _ in range(200)] != [
            b.migration_busy() for _ in range(200)
        ]

    def test_streams_are_independent(self):
        """Consuming one concern's stream must not shift another's draws."""
        config = ChaosConfig(
            seed=3, migration_busy_rate=0.5, device_throttle_rate=0.5
        )
        undisturbed = FaultInjector(config)
        expected = [undisturbed.migration_busy() for _ in range(100)]
        disturbed = FaultInjector(config)
        for _ in range(100):
            disturbed.device_slowdown(DeviceKind.SLOW, is_write=True)
        assert [disturbed.migration_busy() for _ in range(100)] == expected


class TestZeroRateNeutrality:
    def test_zero_rates_consume_no_randomness(self):
        injector = FaultInjector(ChaosConfig())
        states = (
            injector._migration_rng.getstate(),
            injector._device_rng.getstate(),
            injector._profile_rng.getstate(),
        )
        assert not injector.migration_busy()
        assert not injector.migration_abort()
        assert injector.device_slowdown(DeviceKind.SLOW, is_write=True) == 1.0
        assert injector.drop_faults(1000) == 0
        assert states == (
            injector._migration_rng.getstate(),
            injector._device_rng.getstate(),
            injector._profile_rng.getstate(),
        )
        assert injector.counts == {}

    def test_fast_tier_never_throttled(self):
        injector = FaultInjector(ChaosConfig(device_throttle_rate=1.0))
        assert injector.device_slowdown(DeviceKind.FAST, is_write=True) == 1.0
        assert injector.counts == {}


class TestDropFaults:
    def test_full_rate_drops_everything(self):
        injector = FaultInjector(ChaosConfig(profile_drop_rate=1.0))
        assert injector.drop_faults(123) == 123
        assert injector.counts["chaos.profile_faults_dropped"] == 123

    def test_partial_rate_rounds_to_adjacent_integers(self):
        injector = FaultInjector(ChaosConfig(profile_drop_rate=0.5))
        for _ in range(20):
            assert injector.drop_faults(9) in (4, 5)

    def test_no_faults_no_drops(self):
        injector = FaultInjector(ChaosConfig(profile_drop_rate=1.0))
        assert injector.drop_faults(0) == 0


class TestDeviceThrottle:
    def make_device(self, injector):
        spec = DeviceSpec("optane", 1 << 30, 1e9, 1e9)
        return MemoryDevice(spec, DeviceKind.SLOW, injector=injector)

    def test_write_throttled_by_full_factor(self):
        injector = FaultInjector(
            ChaosConfig(device_throttle_rate=1.0, device_throttle_factor=0.25)
        )
        device = self.make_device(injector)
        base = MemoryDevice(device.spec, DeviceKind.SLOW).access_time(
            1 << 20, is_write=True
        )
        assert device.access_time(1 << 20, is_write=True) == pytest.approx(base * 4.0)

    def test_read_degrades_half_as_hard(self):
        injector = FaultInjector(
            ChaosConfig(device_throttle_rate=1.0, device_throttle_factor=0.25)
        )
        device = self.make_device(injector)
        base = MemoryDevice(device.spec, DeviceKind.SLOW).access_time(
            1 << 20, is_write=False
        )
        # Read factor is (1 + 0.25) / 2 = 0.625 of nominal bandwidth.
        assert device.access_time(1 << 20, is_write=False) == pytest.approx(
            base / 0.625
        )

    def test_zero_rate_is_bit_identical(self):
        injector = FaultInjector(ChaosConfig())
        device = self.make_device(injector)
        clean = MemoryDevice(device.spec, DeviceKind.SLOW)
        for nbytes in (0, 1, PAGE, 1 << 20):
            assert device.access_time(nbytes, True) == clean.access_time(nbytes, True)


def make_engine(injector, fast_pages=16, slow_pages=1024):
    table = PageTable(page_size=PAGE)
    fast = MemoryDevice(
        DeviceSpec("fast", fast_pages * PAGE, 1e9, 1e9), DeviceKind.FAST
    )
    slow = MemoryDevice(
        DeviceSpec("slow", slow_pages * PAGE, 1e8, 1e8), DeviceKind.SLOW
    )
    engine = MigrationEngine(
        table,
        fast,
        slow,
        BandwidthChannel(1e6, "promote"),
        BandwidthChannel(1e6, "demote"),
        injector=injector,
    )
    return table, fast, slow, engine


def map_on(table, device, npages, fast, slow):
    run = table.map_run(npages, device)
    (fast if device is DeviceKind.FAST else slow).allocate(npages * PAGE)
    return run


class TestMigrationBusy:
    def test_background_promote_refused_after_retries(self):
        config = ChaosConfig(migration_busy_rate=1.0, max_retries=3)
        table, fast, slow, engine = make_engine(FaultInjector(config))
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert transfer is None
        assert scheduled == []
        assert skipped == [run]
        # Nothing moved, nothing reserved: degradation left the books alone.
        assert fast.used == 0
        assert slow.used == 4 * PAGE
        assert not run.in_flight
        assert engine.stats.counter("migration.retries").value == 3
        assert engine.stats.counter("migration.busy_fallbacks").value == 1

    def test_urgent_promote_never_refused(self):
        config = ChaosConfig(migration_busy_rate=1.0)
        table, fast, slow, engine = make_engine(FaultInjector(config))
        run = map_on(table, DeviceKind.SLOW, 2, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0, urgent=True)
        assert transfer is not None
        assert scheduled == [run]
        # Every retry paid backoff, so the submission starts strictly later.
        assert transfer.start > 0.0
        assert (
            engine.stats.counter("migration.retries").value
            == MigrationEngine.URGENT_RETRY_CAP
        )

    def test_background_demote_refused_leaves_runs_on_fast(self):
        config = ChaosConfig(migration_busy_rate=1.0, max_retries=2)
        table, fast, slow, engine = make_engine(FaultInjector(config))
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        transfer, scheduled = engine.demote([run], now=0.0)
        assert transfer is None
        assert scheduled == []
        assert fast.used == 4 * PAGE
        assert slow.used == 0

    def test_retry_can_succeed_midway(self):
        """At a middling rate, some submissions survive the retry loop."""
        config = ChaosConfig(seed=5, migration_busy_rate=0.5, max_retries=8)
        table, fast, slow, engine = make_engine(
            FaultInjector(config), fast_pages=256
        )
        outcomes = []
        for _ in range(20):
            run = map_on(table, DeviceKind.SLOW, 1, fast, slow)
            transfer, _, _ = engine.promote([run], now=0.0)
            outcomes.append(transfer is not None)
        assert any(outcomes)


class TestMigrationAbort:
    def test_background_abort_rolls_back_promote(self):
        config = ChaosConfig(migration_abort_rate=1.0, abort_fraction=0.5)
        table, fast, slow, engine = make_engine(FaultInjector(config))
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert transfer is None
        assert scheduled == []
        assert skipped == [run]
        assert fast.used == 0
        assert slow.used == 4 * PAGE
        assert run.device is DeviceKind.SLOW
        assert not run.in_flight
        # Channel time was burned for the half that crossed before the wreck.
        assert engine.promote_channel.aborted_transfers == 1
        assert engine.stats.counter("migration.aborted_bytes").value == 2 * PAGE

    def test_background_abort_rolls_back_demote(self):
        config = ChaosConfig(migration_abort_rate=1.0)
        table, fast, slow, engine = make_engine(FaultInjector(config))
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        transfer, scheduled = engine.demote([run], now=0.0)
        assert transfer is None and scheduled == []
        assert fast.used == 4 * PAGE
        assert slow.used == 0

    def test_urgent_resubmits_until_a_copy_survives(self):
        config = ChaosConfig(seed=11, migration_abort_rate=0.5)
        table, fast, slow, engine = make_engine(FaultInjector(config))
        run = map_on(table, DeviceKind.SLOW, 2, fast, slow)
        transfer, scheduled, _ = engine.promote([run], now=0.0, urgent=True)
        assert transfer is not None
        assert scheduled == [run]
        assert run.in_flight


class TestAuditor:
    def test_healthy_machine_passes(self):
        machine = Machine(OPTANE_HM)
        machine.map_run(4, DeviceKind.SLOW)
        machine.map_run(2, DeviceKind.FAST)
        auditor = InvariantAuditor(machine)
        auditor.audit()
        assert auditor.audits_run == 1

    def test_inflight_promotion_double_charge_window_is_legal(self):
        machine = Machine(OPTANE_HM)
        run = machine.map_run(4, DeviceKind.SLOW)
        machine.migration.promote([run], now=0.0)
        InvariantAuditor(machine).audit()

    def test_inflight_demotion_double_charge_window_is_legal(self):
        machine = Machine(OPTANE_HM)
        run = machine.map_run(4, DeviceKind.FAST)
        machine.migration.demote([run], now=0.0)
        InvariantAuditor(machine).audit()

    def test_phantom_fast_allocation_caught(self):
        machine = Machine(OPTANE_HM)
        machine.map_run(4, DeviceKind.SLOW)
        machine.fast.allocate(machine.page_size)  # no run backs this
        with pytest.raises(ConsistencyError, match="fast-usage-matches"):
            InvariantAuditor(machine).audit()

    def test_leaked_slow_release_caught(self):
        machine = Machine(OPTANE_HM)
        machine.map_run(4, DeviceKind.SLOW)
        machine.slow.release(machine.page_size)  # run still mapped
        with pytest.raises(ConsistencyError, match="slow-usage-matches"):
            InvariantAuditor(machine).audit()

    def test_self_migration_caught(self):
        machine = Machine(OPTANE_HM)
        run = machine.map_run(2, DeviceKind.SLOW)
        run.migrating_to = DeviceKind.SLOW
        with pytest.raises(ConsistencyError, match="destination-differs"):
            InvariantAuditor(machine).audit()

    def test_consistency_error_names_the_invariant(self):
        machine = Machine(OPTANE_HM)
        machine.map_run(1, DeviceKind.FAST)
        machine.fast.allocate(machine.page_size)
        with pytest.raises(ConsistencyError) as excinfo:
            InvariantAuditor(machine).audit()
        assert excinfo.value.invariant == "accounting.fast-usage-matches-page-table"

    def test_audit_fires_every_step_during_execution(self):
        graph = build_model("dcgan", batch_size=8)
        machine = Machine(OPTANE_HM)
        from repro.dnn.policy import PlacementPolicy

        auditor = InvariantAuditor(machine)
        Executor(graph, machine, PlacementPolicy(), observers=[auditor]).run_steps(2)
        assert auditor.audits_run == 2

    def test_mutation_mid_run_surfaces_as_consistency_error(self):
        """Deliberate corruption between steps is caught by the next audit."""
        graph = build_model("dcgan", batch_size=8)
        machine = Machine(OPTANE_HM)
        from repro.dnn.executor import StepObserver
        from repro.dnn.policy import PlacementPolicy

        class Saboteur(StepObserver):
            def on_step_end(self, step, result):
                if step == 0:
                    machine.slow.allocate(machine.page_size)

        # Auditor first: step 0's audit sees a healthy machine, then the
        # saboteur corrupts it; step 1's audit must catch the imbalance.
        auditor = InvariantAuditor(machine)
        executor = Executor(
            graph, machine, PlacementPolicy(), observers=[auditor, Saboteur()]
        )
        executor.run_step()
        with pytest.raises(ConsistencyError):
            executor.run_step()


class TestCapacityShrinkConfig:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            ChaosConfig(capacity_shrink_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(capacity_shrink_rate=-0.1)

    def test_frames_and_steps_bounds(self):
        with pytest.raises(ValueError):
            ChaosConfig(capacity_shrink_frames=-1)
        with pytest.raises(ValueError):
            ChaosConfig(capacity_shrink_steps=0)

    def test_shrink_rate_enables(self):
        assert ChaosConfig(capacity_shrink_rate=0.5).enabled

    def test_uniform_leaves_shrink_off(self):
        """uniform() predates this fault; enabling it there would change
        every existing chaos run's deterministic draw sequence."""
        assert ChaosConfig.uniform(0.3).capacity_shrink_rate == 0.0


class TestCapacityShrinker:
    def _shrinker(self, rate=1.0, frames=8, steps=1, seed=7, fast_pages=64,
                  pressure=None):
        from repro.chaos import CapacityShrinker
        from repro.mem.platforms import OPTANE_HM as platform

        machine = Machine.for_platform(
            platform, fast_capacity=fast_pages * PAGE, pressure=pressure
        )
        injector = FaultInjector(
            ChaosConfig(
                capacity_shrink_rate=rate,
                capacity_shrink_frames=frames,
                capacity_shrink_steps=steps,
                seed=seed,
            )
        )
        return machine, CapacityShrinker(machine, injector)

    def test_episode_reserves_and_restores(self):
        machine, shrinker = self._shrinker(steps=2)
        shrinker.on_step_start(0, 0.0)
        assert machine.fast.reserved == 8 * PAGE
        assert shrinker.episodes == 1
        shrinker.on_step_start(1, 1.0)  # episode still running
        assert machine.fast.reserved == 8 * PAGE
        shrinker.on_step_start(2, 2.0)  # episode expires
        assert machine.fast.reserved == 0

    def test_episodes_do_not_stack(self):
        machine, shrinker = self._shrinker(steps=3)
        for step in range(3):
            shrinker.on_step_start(step, float(step))
        assert shrinker.episodes == 1
        assert machine.fast.reserved == 8 * PAGE

    def test_grant_clamped_to_free_space(self):
        machine, shrinker = self._shrinker(frames=64, fast_pages=16)
        machine.map_run(12, DeviceKind.FAST)
        shrinker.on_step_start(0, 0.0)
        assert machine.fast.reserved == 4 * PAGE  # only what was free
        assert machine.fast.free == 0

    def test_same_seed_same_episode_schedule(self):
        def schedule(seed):
            _, shrinker = self._shrinker(rate=0.4, seed=seed, steps=1)
            fired = []
            for step in range(40):
                before = shrinker.episodes
                shrinker.on_step_start(step, float(step))
                fired.append(shrinker.episodes > before)
            return fired

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_zero_rate_never_draws(self):
        machine, shrinker = self._shrinker(rate=0.0)
        for step in range(20):
            shrinker.on_step_start(step, float(step))
        assert shrinker.episodes == 0
        assert shrinker.injector.counts.get("chaos.capacity_shrink", 0) == 0

    def test_auditor_passes_during_episode(self):
        machine, shrinker = self._shrinker(frames=8)
        machine.map_run(4, DeviceKind.FAST)
        machine.map_run(4, DeviceKind.SLOW)
        shrinker.on_step_start(0, 0.0)
        InvariantAuditor(machine).audit()  # reserved + used + free == capacity

    def test_shrink_pushes_governor_over_watermark(self):
        from repro.mem.pressure import PressureConfig

        machine, shrinker = self._shrinker(
            frames=48,
            fast_pages=64,
            pressure=PressureConfig.watermarks(0.5, 0.75),
        )
        run = machine.map_run(8, DeviceKind.FAST)
        run.initialized = True
        assert machine.pressure.used_fraction() < 0.5
        shrinker.on_step_start(0, 0.0)  # withholds 48 frames: 56/64 occupied
        assert machine.pressure.used_fraction() > 0.75
        assert machine.stats.counter("pressure.high_crossings").value == 1


class TestAuditorReservedChecks:
    def test_negative_reserved_caught(self):
        machine = Machine(OPTANE_HM)
        machine.fast._reserved = -1
        with pytest.raises(ConsistencyError, match="reserved-non-negative"):
            InvariantAuditor(machine).audit()

    def test_reserved_plus_used_over_capacity_caught(self):
        machine = Machine(OPTANE_HM)
        machine.fast.reserve(machine.fast.capacity)
        machine.fast._used = machine.page_size  # corruption: no room for it
        with pytest.raises(ConsistencyError, match="usage-within-capacity"):
            InvariantAuditor(machine).audit()

    def test_over_unreserve_raises_at_device(self):
        machine = Machine(OPTANE_HM)
        machine.fast.reserve(machine.page_size)
        with pytest.raises(ValueError):
            machine.fast.unreserve(2 * machine.page_size)


class TestEpisodeValidation:
    def test_unknown_kind_rejected(self):
        from repro.chaos import Episode

        with pytest.raises(ValueError, match="unknown episode kind"):
            Episode("meteor-strike", start=0.0, duration=1.0)

    def test_bad_times_rejected(self):
        from repro.chaos import Episode

        with pytest.raises(ValueError, match="start"):
            Episode("machine-offline", start=-1.0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            Episode("machine-offline", start=0.0, duration=0.0)

    def test_blackout_needs_target_and_capacity_needs_frames(self):
        from repro.chaos import Episode

        with pytest.raises(ValueError, match="target channel"):
            Episode("channel-blackout", start=0.0, duration=1.0)
        with pytest.raises(ValueError, match="frames"):
            Episode("capacity-loss", start=0.0, duration=1.0)

    def test_end_is_start_plus_duration(self):
        from repro.chaos import Episode

        ep = Episode("machine-offline", start=2.0, duration=0.5)
        assert ep.end == 2.5

    def test_config_validation(self):
        from repro.chaos import EpisodeConfig

        with pytest.raises(ValueError, match="horizon"):
            EpisodeConfig(horizon=0.0)
        with pytest.raises(ValueError, match="machine_mtbf"):
            EpisodeConfig(machine_mtbf=-1.0)
        with pytest.raises(ValueError, match="capacity_frames"):
            EpisodeConfig(capacity_frames=0)

    def test_config_enabled_only_with_a_positive_mtbf(self):
        from repro.chaos import EpisodeConfig

        assert not EpisodeConfig().enabled
        assert EpisodeConfig(machine_mtbf=1.0).enabled
        assert EpisodeConfig(blackout_mtbf=1.0).enabled
        assert EpisodeConfig(capacity_mtbf=1.0).enabled


class TestEpisodeGeneration:
    def _config(self, seed=3):
        from repro.chaos import EpisodeConfig

        return EpisodeConfig(
            seed=seed,
            horizon=10.0,
            machine_mtbf=1.0,
            machine_mttr=0.2,
            blackout_mtbf=1.5,
            blackout_mttr=0.1,
            capacity_mtbf=2.0,
            capacity_mttr=0.3,
        )

    def test_same_seed_same_timeline(self):
        from repro.chaos import generate_episodes

        assert generate_episodes(self._config()) == generate_episodes(
            self._config()
        )

    def test_different_seed_different_timeline(self):
        from repro.chaos import generate_episodes

        assert generate_episodes(self._config(1)) != generate_episodes(
            self._config(2)
        )

    def test_episodes_sorted_and_within_horizon(self):
        from repro.chaos import generate_episodes

        episodes = generate_episodes(self._config())
        starts = [ep.start for ep in episodes]
        assert starts == sorted(starts)
        assert all(0.0 <= ep.start < 10.0 for ep in episodes)

    def test_same_concern_episodes_never_overlap(self):
        from repro.chaos import generate_episodes

        episodes = generate_episodes(self._config())
        by_kind = {}
        for ep in episodes:
            by_kind.setdefault(ep.kind, []).append(ep)
        assert len(by_kind) == 3  # all three concerns drew episodes
        for kind, eps in by_kind.items():
            for prev, cur in zip(eps, eps[1:]):
                assert prev.end <= cur.start, kind

    def test_disabled_config_generates_nothing(self):
        from repro.chaos import EpisodeConfig, generate_episodes

        assert generate_episodes(EpisodeConfig()) == []


class TestEpisodeDriver:
    def _run(self, episodes, machine=None):
        from repro.chaos import EpisodeDriver
        from repro.sim.engine import Engine

        machine = machine if machine is not None else Machine(OPTANE_HM)
        engine = Engine()
        machine.bind_engine(engine)
        driver = EpisodeDriver(machine, episodes)
        driver.arm(engine)
        return machine, engine, driver

    def test_machine_offline_flips_online_flag(self):
        from repro.chaos import Episode

        ep = Episode("machine-offline", start=1.0, duration=0.5)
        machine, engine, driver = self._run([ep])
        assert machine.online
        engine.run(until=1.25)
        assert not machine.online
        engine.run()
        assert machine.online
        assert driver.counts["chaos.episode.machine-offline"] == 1

    def test_blackout_pushes_channel_next_free(self):
        from repro.chaos import Episode

        ep = Episode("channel-blackout", start=0.5, duration=2.0, target="promote")
        machine, engine, _ = self._run([ep])
        engine.run(until=0.75)
        channel = machine.promote_channel
        assert channel.next_free >= 2.5
        assert channel.blocked_time == 2.0

    def test_capacity_loss_reserves_then_restores(self):
        from repro.chaos import Episode

        machine = Machine(OPTANE_HM)
        frames = 4
        ep = Episode("capacity-loss", start=1.0, duration=1.0, frames=frames)
        machine, engine, _ = self._run([ep], machine)
        engine.run(until=1.5)
        assert machine.fast.reserved == frames * machine.page_size
        engine.run()
        assert machine.fast.reserved == 0

    def test_capacity_loss_clamps_to_free_space(self):
        from repro.chaos import Episode

        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=4 * OPTANE_HM.page_size
        )
        machine.fast.allocate(3 * machine.page_size)
        ep = Episode("capacity-loss", start=0.5, duration=1.0, frames=100)
        machine, engine, _ = self._run([ep], machine)
        engine.run(until=0.75)
        # Only one frame was free; resident data must survive.
        assert machine.fast.reserved == machine.page_size
        engine.run()
        assert machine.fast.reserved == 0

    def test_unknown_blackout_target_rejected_up_front(self):
        from repro.chaos import Episode, EpisodeDriver

        ep = Episode("channel-blackout", start=0.0, duration=1.0, target="warp")
        with pytest.raises(ValueError, match="unknown channel"):
            EpisodeDriver(Machine(OPTANE_HM), [ep])

    def test_begin_and_end_fire_as_fault_events(self):
        from repro.chaos import Episode
        from repro.sim.engine import EventKind

        ep = Episode("machine-offline", start=1.0, duration=0.5)
        machine, engine, _ = self._run([ep])
        phases = []
        engine.subscribe(
            EventKind.FAULT,
            lambda ev: phases.append((ev.payload["phase"], ev.time)),
        )
        engine.run()
        assert phases == [("begin", 1.0), ("end", 1.5)]


class TestBlackoutInFlightTransfer:
    """Regression: a channel blackout must suspend in-flight transfers.

    An earlier bug let an already-scheduled TRANSFER_DONE event fire on the
    original schedule and commit the migration mid-outage, so the run read
    from destination frames while the channel was dark.  ``block()`` now
    re-schedules the pending event to the delayed finish and the episode
    driver re-stamps cached availability times.
    """

    def _in_flight_blackout(self, tracer=None):
        from repro.chaos import Episode, EpisodeDriver
        from repro.sim.engine import Engine

        machine = Machine(OPTANE_HM, tracer=tracer)
        engine = Engine()
        machine.bind_engine(engine)
        run = machine.map_run(4, DeviceKind.SLOW)
        transfer, scheduled, skipped = machine.migration.promote([run], now=0.0)
        assert scheduled == [run] and not skipped
        original_finish = transfer.finish
        outage = Episode(
            "channel-blackout",
            start=original_finish / 2.0,
            duration=2.0 * original_finish,
            target="promote",
        )
        driver = EpisodeDriver(machine, [outage])
        driver.arm(engine)
        return machine, engine, run, transfer, original_finish, outage

    def test_transfer_done_does_not_commit_mid_outage(self):
        machine, engine, run, transfer, original_finish, outage = (
            self._in_flight_blackout()
        )
        # Run past the pre-blackout finish time but stay inside the outage:
        # the original TRANSFER_DONE instant passes without a commit.
        probe = original_finish * 1.5
        assert outage.start < original_finish < probe < outage.end
        engine.run(until=probe)
        assert run.in_flight
        assert run.effective_device(probe) is DeviceKind.SLOW
        assert transfer.finish > outage.end

    def test_transfer_commits_after_the_outage_lifts(self):
        machine, engine, run, transfer, _, outage = self._in_flight_blackout()
        engine.run()
        now = engine.now
        machine.migration.sync(now)
        assert not run.in_flight
        assert run.device is DeviceKind.FAST
        assert run.effective_device(now) is DeviceKind.FAST
        # The copy landed strictly after the outage, never during it.
        assert outage.end <= transfer.finish <= now

    def test_books_balance_and_trace_stays_well_formed(self):
        from repro.obs import EventTracer, to_chrome, validate_chrome

        tracer = EventTracer()
        machine, engine, run, transfer, _, _ = self._in_flight_blackout(
            tracer=tracer
        )
        engine.run()
        machine.migration.sync(engine.now)
        InvariantAuditor(machine).audit()  # raises ConsistencyError on drift
        assert validate_chrome(to_chrome(tracer.events)) > 0
