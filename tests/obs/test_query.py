"""TraceQuery: filtering, span reconstruction, overlap and rate accounting."""

import pytest

from repro.obs import EventTracer, TraceQuery


def build_query():
    tracer = EventTracer()
    tracer.begin("step", "step", ts=0.0, step=0)
    tracer.begin("layer", "step", ts=0.5, layer=0)
    tracer.instant("protection-fault", "fault", ts=0.75, track="faults", faults=3)
    tracer.end("layer", "step", ts=1.0)
    tracer.end("step", "step", ts=2.0)
    tracer.complete(
        "xfer", "channel", ts=0.2, dur=0.3, track="promote", nbytes=1000
    )
    tracer.complete(
        "xfer", "channel", ts=0.5, dur=0.5, track="promote", nbytes=2000
    )
    tracer.instant("case3", "prefetch", ts=1.5, track="prefetch", tensor="w0")
    return TraceQuery(tracer.events)


class TestFilter:
    def test_by_category_and_name(self):
        query = build_query()
        assert query.filter(cat="channel").count() == 2
        assert query.filter(cat="step", name="layer").count() == 2

    def test_by_tensor_arg(self):
        query = build_query()
        assert query.filter(tensor="w0").count() == 1
        assert query.filter(tensor="nope").count() == 0

    def test_by_predicate(self):
        query = build_query()
        big = query.filter(predicate=lambda e: e.args.get("nbytes", 0) > 1500)
        assert big.count() == 1

    def test_between_clips_instants_and_keeps_intersecting_spans(self):
        query = build_query()
        window = query.between(0.4, 0.8)
        names = sorted(event.name for event in window)
        # layer B at 0.5, fault at 0.75, both xfers intersect [0.4, 0.8).
        assert names == ["layer", "protection-fault", "xfer", "xfer"]

    def test_between_keeps_zero_duration_complete_on_window_start(self):
        # Regression: a dur=0 X event sitting exactly on the window start
        # used to vanish (ts + dur > start is false), while an instant at
        # the same timestamp was kept.  Both must behave identically.
        tracer = EventTracer()
        tracer.complete("noop", "channel", ts=1.0, dur=0.0, track="t")
        tracer.instant("mark", "chaos", ts=1.0)
        window = TraceQuery(tracer.events).between(1.0, 2.0)
        assert sorted(event.name for event in window) == ["mark", "noop"]

    def test_between_excludes_zero_duration_complete_on_window_end(self):
        # The half-open [start, end) convention instants follow applies to
        # dur=0 X events too: sitting exactly on the end is outside.
        tracer = EventTracer()
        tracer.complete("noop", "channel", ts=2.0, dur=0.0, track="t")
        assert TraceQuery(tracer.events).between(1.0, 2.0).count() == 0
        assert TraceQuery(tracer.events).between(2.0, 3.0).count() == 1


class TestSpans:
    def test_begin_end_pairs_nest_lifo(self):
        spans = build_query().spans(cat="step")
        assert [(s.name, s.start, s.end) for s in spans] == [
            ("step", 0.0, 2.0),
            ("layer", 0.5, 1.0),
        ]

    def test_end_args_merge_over_begin_args(self):
        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0, step=3, phase="warm")
        tracer.end("step", "step", ts=1.0, phase="done")
        (span,) = TraceQuery(tracer.events).spans()
        assert span.args == {"step": 3, "phase": "done"}

    def test_unclosed_begin_invents_no_span(self):
        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0)
        assert TraceQuery(tracer.events).spans() == []

    def test_same_timestamp_begin_end_yields_zero_duration_span(self):
        # Regression audit: a B/E pair at the same timestamp must still
        # close into a (zero-duration) span rather than dangle or crash.
        tracer = EventTracer()
        tracer.begin("flash", "step", ts=1.0)
        tracer.end("flash", "step", ts=1.0)
        (span,) = TraceQuery(tracer.events).spans()
        assert (span.start, span.end, span.duration) == (1.0, 1.0, 0.0)

    def test_total_span_time(self):
        query = build_query()
        assert query.total_span_time(cat="channel") == pytest.approx(0.8)

    def test_covering_span_picks_innermost(self):
        query = build_query()
        span = query.covering_span(0.75, cat="step")
        assert span is not None and span.name == "layer"

    def test_covering_span_none_outside(self):
        assert build_query().covering_span(9.0, cat="step") is None


class TestOverlap:
    def test_sequential_spans_do_not_overlap(self):
        assert build_query().overlap_time("promote", cat="channel") == 0.0

    def test_concurrent_spans_report_shared_time(self):
        tracer = EventTracer()
        tracer.complete("xfer", "channel", ts=0.0, dur=1.0, track="t")
        tracer.complete("xfer", "channel", ts=0.6, dur=1.0, track="t")
        query = TraceQuery(tracer.events)
        assert query.overlap_time("t") == pytest.approx(0.4)

    def test_zero_duration_span_contributes_no_overlap(self):
        # Regression audit: a dur=0 span inside a busy one adds an end
        # marker at the same timestamp as its start; the sweep must not
        # count negative or phantom overlap from the tie.
        tracer = EventTracer()
        tracer.complete("xfer", "channel", ts=0.0, dur=1.0, track="t")
        tracer.complete("blip", "channel", ts=0.5, dur=0.0, track="t")
        query = TraceQuery(tracer.events)
        assert query.overlap_time("t") == 0.0


class TestAggregates:
    def test_sum_arg_skips_bools_and_missing(self):
        tracer = EventTracer()
        tracer.instant("a", "chaos", ts=0.0, amount=2, urgent=True)
        tracer.instant("b", "chaos", ts=0.0, amount=3)
        tracer.instant("c", "chaos", ts=0.0)
        assert TraceQuery(tracer.events).sum_arg("amount") == 5
        assert TraceQuery(tracer.events).sum_arg("urgent") == 0.0

    def test_categories_and_tracks(self):
        query = build_query()
        assert query.categories() == {
            "step": 4,
            "fault": 1,
            "channel": 2,
            "prefetch": 1,
        }
        assert query.tracks() == ["main", "faults", "promote", "prefetch"]

    def test_span_rate_series_conserves_bytes(self):
        query = build_query()
        series = query.span_rate_series(0.25, cat="channel")
        total = sum(rate * 0.25 for _, rate in series)
        assert total == pytest.approx(3000.0)

    def test_span_rate_series_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            build_query().span_rate_series(0.0)
