"""EventTracer: emission, validation, ring-buffer and clock semantics."""

import pytest

from repro.obs import CATEGORIES, EventTracer
from repro.sim.clock import Clock


class TestEmission:
    def test_instant_records_args_and_track(self):
        tracer = EventTracer()
        tracer.instant("case3", "prefetch", ts=1.5, track="prefetch", interval=4)
        (event,) = tracer.events
        assert event.ph == "i"
        assert event.ts == 1.5
        assert event.track == "prefetch"
        assert event.args == {"interval": 4}

    def test_complete_records_duration(self):
        tracer = EventTracer()
        tracer.complete("xfer", "channel", ts=2.0, dur=0.5, nbytes=4096)
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.dur == 0.5

    def test_negative_duration_rejected(self):
        tracer = EventTracer()
        with pytest.raises(ValueError):
            tracer.complete("xfer", "channel", ts=2.0, dur=-0.1)

    def test_unknown_category_rejected(self):
        tracer = EventTracer()
        with pytest.raises(ValueError, match="category"):
            tracer.instant("x", "not-a-category", ts=0.0)

    def test_every_declared_category_accepted(self):
        tracer = EventTracer()
        for cat in sorted(CATEGORIES):
            tracer.instant("x", cat, ts=0.0)
        assert len(tracer) == len(CATEGORIES)

    def test_begin_end_are_phase_events(self):
        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0, step=1)
        tracer.end("step", "step", ts=2.0)
        first, second = tracer.events
        assert (first.ph, second.ph) == ("B", "E")


class TestClockBinding:
    def test_unbound_clock_stamps_zero(self):
        tracer = EventTracer()
        tracer.instant("x", "fault")
        assert tracer.events[0].ts == 0.0

    def test_bound_clock_supplies_default_timestamps(self):
        tracer = EventTracer()
        clock = Clock()
        clock.advance(3.25)
        tracer.bind_clock(clock)
        tracer.instant("x", "fault")
        tracer.begin("step", "step")
        assert [event.ts for event in tracer.events] == [3.25, 3.25]

    def test_explicit_ts_wins_over_clock(self):
        tracer = EventTracer()
        clock = Clock()
        clock.advance(9.0)
        tracer.bind_clock(clock)
        tracer.instant("x", "fault", ts=1.0)
        assert tracer.events[0].ts == 1.0


class TestRingBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_overwrites_oldest_and_counts_drops(self):
        tracer = EventTracer(capacity=3)
        for index in range(5):
            tracer.instant("e", "step", ts=float(index), n=index)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        # Oldest-first order survives the rotation.
        assert [event.args["n"] for event in tracer.events] == [2, 3, 4]

    def test_exact_fill_drops_nothing(self):
        tracer = EventTracer(capacity=3)
        for index in range(3):
            tracer.instant("e", "step", ts=float(index), n=index)
        assert tracer.dropped == 0
        assert [event.args["n"] for event in tracer.events] == [0, 1, 2]

    def test_clear_resets_everything(self):
        tracer = EventTracer(capacity=2)
        for index in range(4):
            tracer.instant("e", "step", ts=float(index))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.events == []
        tracer.instant("again", "step", ts=0.0)
        assert [event.name for event in tracer.events] == ["again"]
