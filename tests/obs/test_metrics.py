"""MetricsRegistry: typed metrics, kind safety, and canonical exposition."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    Timeline,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.add(2)
        counter.add(0)
        assert counter.value == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.add(5)
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.add(-4.0)
        assert gauge.value == 6.0


class TestHistogram:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            Histogram("h", lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            Histogram("h", bins=0)

    def test_rejects_negative_observation(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(-1.0)

    def test_edges_are_log_spaced_and_pinned(self):
        hist = Histogram("h", lo=1.0, hi=1000.0, bins=3)
        assert hist.edges == pytest.approx([10.0, 100.0, 1000.0])
        assert hist.edges[-1] == 1000.0  # exactly, not within drift

    def test_observations_land_in_fixed_buckets(self):
        hist = Histogram("h", lo=1.0, hi=1000.0, bins=3)
        for value in (0.5, 11.0, 99.0, 999.0, 5000.0):
            hist.observe(value)
        # ~10 | ~100 | 1000 (pinned) | overflow
        assert hist.counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(6109.5)
        assert hist.min == 0.5 and hist.max == 5000.0

    def test_same_parameters_bin_identically(self):
        a = Histogram("a", lo=1e-3, hi=1e3, bins=12)
        b = Histogram("b", lo=1e-3, hi=1e3, bins=12)
        for value in (0.002, 0.5, 7.0, 999.0):
            a.observe(value)
            b.observe(value)
        assert a.counts == b.counts

    def test_nonzero_buckets_marks_overflow_inf(self):
        hist = Histogram("h", lo=1.0, hi=10.0, bins=1)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.nonzero_buckets() == [(10.0, 1), (math.inf, 1)]

    def test_quantile(self):
        hist = Histogram("h", lo=1.0, hi=1000.0, bins=3)
        for value in (5.0, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(10.0)
        assert hist.quantile(1.0) == 1000.0
        assert hist.quantile(0.0) == pytest.approx(10.0)
        assert Histogram("e").quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_overflow_returns_observed_max(self):
        hist = Histogram("h", lo=1.0, hi=10.0, bins=1)
        hist.observe(123.0)
        assert hist.quantile(1.0) == 123.0


class TestTimeSeries:
    def test_sliding_window_drops_oldest(self):
        series = TimeSeries("s", max_samples=2)
        series.sample(1.0, ts=0.0)
        series.sample(2.0, ts=1.0)
        series.sample(3.0, ts=2.0)
        assert series.samples == [(1.0, 2.0), (2.0, 3.0)]
        assert series.dropped == 1
        assert series.last() == (2.0, 3.0)

    def test_uses_registry_clock_when_no_ts(self):
        class FakeClock:
            now = 7.5

        registry = MetricsRegistry()
        registry.bind_clock(FakeClock())
        series = registry.series("s")
        series.sample(1.0)
        assert series.samples == [(7.5, 1.0)]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.series("s") is registry.series("s")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_parameter_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", lo=1.0, hi=10.0, bins=4)
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("h", lo=1.0, hi=100.0, bins=4)

    def test_timeline_width_conflict_raises(self):
        registry = MetricsRegistry()
        registry.timeline("t", bin_width=0.5)
        with pytest.raises(ValueError, match="already exists"):
            registry.timeline("t", bin_width=0.25)

    def test_counters_prefix_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("migration.promotions").add(3)
        registry.counter("pressure.spills").add(1)
        registry.gauge("migration.backlog").set(9)
        assert registry.counters("migration.") == {"migration.promotions": 3.0}

    def test_reset_clears_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.histogram("h").observe(1.0)
        registry.series("s").sample(1.0, ts=0.0)
        registry.reset()
        assert registry.counter("c").value == 0.0
        assert registry.histogram("h").count == 0
        assert registry.series("s").samples == []


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("migration.promotions").add(3)
        registry.gauge("pressure.above_low").set(1)
        hist = registry.histogram("executor.step_time", lo=1e-3, hi=1e3, bins=6)
        hist.observe(0.5)
        hist.observe(2.0)
        registry.timeline("bw", bin_width=1.0).record(0.5, 100.0)
        registry.series("occ").sample(0.25, ts=1.0)
        return registry

    def test_json_is_canonical_and_insertion_order_free(self):
        a = MetricsRegistry()
        a.counter("x").add(1)
        a.gauge("y").set(2)
        b = MetricsRegistry()
        b.gauge("y").set(2)
        b.counter("x").add(1)
        assert a.to_json() == b.to_json()
        # round-trips as strict JSON
        payload = json.loads(self.build().to_json())
        assert payload["counters"]["migration.promotions"] == 3.0
        assert payload["histograms"]["executor.step_time"]["count"] == 2

    def test_snapshot_shapes(self):
        snap = self.build().snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "timelines", "series"}
        hist = snap["histograms"]["executor.step_time"]
        assert hist["min"] == 0.5 and hist["max"] == 2.0
        assert sum(count for _, count in hist["buckets"]) == 2
        assert snap["series"]["occ"]["samples"] == [[1.0, 0.25]]

    def test_prometheus_text_format(self):
        text = self.build().to_prometheus()
        assert "# TYPE repro_migration_promotions counter" in text
        assert "repro_migration_promotions 3" in text
        assert "# TYPE repro_executor_step_time histogram" in text
        assert 'repro_executor_step_time_bucket{le="+Inf"} 2' in text
        assert "repro_executor_step_time_count 2" in text
        assert "repro_bw_total 100" in text
        assert "repro_occ 0.25" in text
        assert text.endswith("\n")

    def test_prometheus_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", lo=1.0, hi=100.0, bins=2)
        for value in (5.0, 50.0, 500.0):
            hist.observe(value)
        text = registry.to_prometheus(namespace="")
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_bucket{")
        ]
        assert counts == [1, 2, 3]  # cumulative, ending at total count
        assert 'h_bucket{le="+Inf"} 3' in text

    def test_prometheus_help_lines(self):
        registry = self.build()
        text = registry.to_prometheus()
        # Every TYPE line is preceded by a HELP line for the same family.
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split(" ")[2]
                assert lines[index - 1].startswith(f"# HELP {family} ")
        # Undescribed metrics fall back to their dotted name as help text.
        assert "# HELP repro_migration_promotions migration.promotions" in text

    def test_describe_overrides_help_text(self):
        registry = MetricsRegistry()
        registry.counter("migration.promotions").add(1)
        registry.describe("migration.promotions", "Pages promoted to fast")
        text = registry.to_prometheus()
        assert (
            "# HELP repro_migration_promotions Pages promoted to fast" in text
        )

    def test_help_text_escapes_backslash(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.describe("c", "path C:\\fast")
        assert "# HELP repro_c path C:\\\\fast" in registry.to_prometheus()

    def test_help_text_escapes_newline(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.describe("c", "line one\nline two")
        text = registry.to_prometheus()
        assert "# HELP repro_c line one\\nline two" in text
        # The exposition stays one-line-per-record: no physical line is a
        # bare continuation of a help string.
        assert all(
            line.startswith(("#", "repro_")) for line in text.splitlines()
        )

    def test_timeline_help_names_the_total_family(self):
        registry = MetricsRegistry()
        registry.timeline("bw", bin_width=1.0).record(0.5, 100.0)
        text = registry.to_prometheus()
        assert "# HELP repro_bw_total bw" in text
        assert "# TYPE repro_bw_total counter" in text

    def test_empty_registry_expositions(self):
        registry = MetricsRegistry()
        assert registry.to_prometheus() == ""
        assert json.loads(registry.to_json()) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timelines": {},
            "series": {},
        }


class TestLabelEscaping:
    def test_backslash_escaped(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value("a\\b") == "a\\\\b"

    def test_double_quote_escaped(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline_escaped(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value("a\nb") == "a\\nb"

    def test_backslash_escaped_before_quote_and_newline(self):
        # Escaping order matters: a pre-escaped sequence must not be
        # double-unescapable (\" must become \\\" not \\" -> ambiguous).
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('\\"\n') == '\\\\\\"\\n'

    def test_plain_values_untouched(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value("promote-0.5") == "promote-0.5"

    def test_histogram_le_labels_pass_through_escaper(self):
        registry = MetricsRegistry()
        registry.histogram("h", lo=1.0, hi=10.0, bins=1).observe(5.0)
        text = registry.to_prometheus(namespace="")
        for line in text.splitlines():
            if line.startswith("h_bucket{"):
                value = line.split('le="', 1)[1].split('"', 1)[0]
                assert "\\" not in value  # plain floats need no escaping
                float(value.replace("+Inf", "inf"))


class TestStatsShim:
    def test_shim_reexports_the_same_objects(self):
        from repro.sim import stats

        assert stats.Counter is Counter
        assert stats.Timeline is Timeline
        assert stats.StatsRegistry is MetricsRegistry

    def test_shim_registry_isinstance_agrees(self):
        from repro.sim.stats import StatsRegistry

        assert isinstance(MetricsRegistry(), StatsRegistry)
        assert isinstance(StatsRegistry(), MetricsRegistry)
