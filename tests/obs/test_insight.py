"""Tensor-level insight: collector invariants, artifact, join, HTML."""

import json

import pytest

from repro.harness.report import format_insight
from repro.harness.runner import run_policy
from repro.obs import (
    INSIGHT_SCHEMA,
    InsightCollector,
    InsightConfig,
    insight_json,
    join_stall_attribution,
    render_insight_html,
    validate_insight,
    write_insight,
    write_insight_html,
)


def collected_run(policy="sentinel", model="dcgan", config=None, **kwargs):
    collector = InsightCollector(config=config)
    metrics = run_policy(policy, model=model, insight=collector, **kwargs)
    return collector, metrics


@pytest.fixture(scope="module")
def dcgan_report():
    collector, _ = collected_run()
    return collector.report(meta={"model": "dcgan", "policy": "sentinel"})


class TestInsightConfig:
    def test_defaults_valid(self):
        config = InsightConfig()
        assert config.hot_layers == 1
        assert config.warm_layers == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hot_layers": -1},
            {"hot_layers": 4, "warm_layers": 2},
            {"pingpong_window": 0.0},
            {"pingpong_window": -1.0},
            {"slo_objective": 0.0},
            {"slo_objective": 1.0},
            {"serve_window": 0.0},
            {"burn_threshold": 0.0},
            {"burn_long_windows": 0},
            {"reservoir_size": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            InsightConfig(**kwargs)


class TestCollectorLifecycle:
    def test_report_before_finalize_raises(self):
        collector = InsightCollector()
        with pytest.raises(ValueError, match="finalize"):
            collector.report()
        with pytest.raises(ValueError, match="finalize"):
            collector.summary()

    def test_finalize_is_idempotent(self):
        collector, _ = collected_run()
        first = collector.report()
        collector.finalize(1e9)  # second call must be a no-op
        assert collector.report() == first

    def test_bind_rejects_second_machine(self):
        collector, _ = collected_run()
        with pytest.raises(ValueError, match="already bound"):
            collector.bind(object())

    def test_summary_keys_and_consistency(self):
        collector, _ = collected_run()
        summary = collector.summary()
        report = collector.report()
        assert set(summary) == {
            "insight.tensor_episodes",
            "insight.pingpong_events",
            "insight.pingpong_tensors",
            "insight.wasted_prefetch_bytes",
            "insight.migration_events",
        }
        assert summary["insight.tensor_episodes"] == len(report["tensors"])
        assert summary["insight.migration_events"] == len(report["migrations"])
        assert summary["insight.pingpong_events"] == sum(
            row["pingpong"] for row in report["tensors"]
        )

    def test_run_metrics_extras_carry_summary(self):
        collector = InsightCollector()
        metrics = run_policy("sentinel", model="dcgan", insight=collector)
        assert metrics.extras["insight.tensor_episodes"] > 0
        assert (
            metrics.extras["insight.migration_events"]
            == collector.summary()["insight.migration_events"]
        )


class TestArtifact:
    def test_validates_and_has_schema(self, dcgan_report):
        assert dcgan_report["schema"] == INSIGHT_SCHEMA
        assert validate_insight(dcgan_report) == len(dcgan_report["tensors"])
        assert dcgan_report["meta"] == {"model": "dcgan", "policy": "sentinel"}

    def test_residency_segments_tile_each_lifetime(self, dcgan_report):
        for row in dcgan_report["tensors"]:
            segments = row["residency"]
            end = row["free"] if row["free"] is not None else segments[-1][1]
            tiled = sum(t1 - t0 for t0, t1, _ in segments)
            assert tiled == pytest.approx(end - row["alloc"], abs=1e-12)

    def test_migration_totals_balance_tensor_attribution(self, dcgan_report):
        totals = dcgan_report["totals"]
        for kind in ("promote", "demote"):
            key = f"{kind}_bytes"
            if key not in totals:
                continue
            attributed = totals[f"{kind}_attributed"]
            unattributed = totals[f"{kind}_unattributed"]
            assert attributed + unattributed == pytest.approx(totals[key])
            assert attributed >= 0.0 and unattributed >= -1e-6

    def test_thrash_score_matches_definition(self, dcgan_report):
        for row in dcgan_report["tensors"]:
            expected = row["migrated_bytes"] / max(1, row["bytes_touched"])
            assert row["thrash"] == pytest.approx(expected)

    def test_canonical_json_is_byte_stable(self):
        a, _ = collected_run()
        b, _ = collected_run()
        meta = {"model": "dcgan", "policy": "sentinel"}
        assert insight_json(a.report(meta=meta)) == insight_json(b.report(meta=meta))

    def test_write_insight_round_trips(self, dcgan_report, tmp_path):
        path = tmp_path / "insight.json"
        write_insight(dcgan_report, str(path))
        loaded = json.loads(path.read_text())
        assert validate_insight(loaded) == len(dcgan_report["tensors"])
        assert insight_json(loaded) == insight_json(
            json.loads(insight_json(dcgan_report))
        )

    def test_validate_rejects_bad_artifacts(self, dcgan_report):
        with pytest.raises(ValueError, match="JSON object"):
            validate_insight([])
        with pytest.raises(ValueError, match="schema"):
            validate_insight({"schema": "bogus"})
        broken = json.loads(insight_json(dcgan_report))
        del broken["occupancy"]
        with pytest.raises(ValueError, match="occupancy"):
            validate_insight(broken)
        gapped = json.loads(insight_json(dcgan_report))
        victim = next(
            row for row in gapped["tensors"] if len(row["residency"]) > 1
        )
        victim["residency"][1][0] += 1.0
        with pytest.raises(ValueError, match="gap"):
            validate_insight(gapped)


class TestPingPong:
    def test_window_bounds_detection(self):
        # Unbounded window flags at least as many events as a tiny one.
        wide, _ = collected_run(config=InsightConfig(pingpong_window=None))
        narrow, _ = collected_run(config=InsightConfig(pingpong_window=1e-9))
        wide_count = wide.summary()["insight.pingpong_events"]
        narrow_count = narrow.summary()["insight.pingpong_events"]
        assert narrow_count <= wide_count
        assert narrow_count == 0  # nothing round-trips within a nanosecond

    def test_flagged_entries_are_promote_demote_promote(self):
        collector, _ = collected_run()
        report = collector.report()
        for row in report["tensors"]:
            flagged = [e for e in row["lineage"] if e.get("pingpong")]
            if row["pingpong"]:
                kinds = {e["kind"] for e in flagged}
                assert kinds <= {"promote", "demote"}
                assert len(flagged) >= 3


class TestStallJoin:
    def test_join_distributes_proportionally(self):
        class Step:
            def __init__(self, step, start, end, migration_stall):
                self.step = step
                self.start = start
                self.end = end
                self.migration_stall = migration_stall

        class Attribution:
            steps = (Step(0, 0.0, 10.0, 3.0), Step(1, 10.0, 20.0, 5.0))

        report = {
            "tensors": [
                {
                    "lineage": [{"t": 1.0, "bytes": 100.0}],
                    "stall": 0.0,
                },
                {
                    "lineage": [{"t": 2.0, "bytes": 300.0}],
                    "stall": 0.0,
                },
            ],
            "totals": {},
        }
        join_stall_attribution(report, Attribution())
        # Step 0's 3.0s split 1:3; step 1's 5.0s has no in-step migrations.
        assert report["tensors"][0]["stall"] == pytest.approx(0.75)
        assert report["tensors"][1]["stall"] == pytest.approx(2.25)
        assert report["totals"]["stall_unattributed"] == pytest.approx(5.0)

    def test_join_on_real_run_conserves_stall(self):
        from repro.obs import EventTracer, attribute

        tracer = EventTracer(capacity=1 << 16)
        collector = InsightCollector()
        run_policy("sentinel", model="dcgan", tracer=tracer, insight=collector)
        report = collector.report()
        attribution = attribute(tracer.events, dropped=tracer.dropped)
        join_stall_attribution(report, attribution)
        total_stall = sum(s.migration_stall for s in attribution.steps)
        attributed = sum(row["stall"] for row in report["tensors"])
        assert attributed + report["totals"]["stall_unattributed"] == (
            pytest.approx(total_stall, abs=1e-9)
        )


class TestTextAndHtml:
    def test_format_insight_renders_headline(self, dcgan_report):
        text = format_insight(dcgan_report, top=5)
        assert "tensor episodes" in text
        assert "top 5 tensors by migrated bytes" in text
        assert "ping-pong events" in text

    def test_html_is_self_contained(self, dcgan_report):
        html = render_insight_html(dcgan_report)
        assert html.lower().startswith("<!doctype html>")
        lowered = html.lower()
        for marker in ("http://", "https://", "<link", "src="):
            assert marker not in lowered
        assert "<svg" in html and "<style>" in html

    def test_html_embeds_the_canonical_artifact(self, dcgan_report):
        html = render_insight_html(dcgan_report)
        start = html.index('id="insight-data">') + len('id="insight-data">')
        end = html.index("</script>", start)
        embedded = json.loads(html[start:end])
        assert validate_insight(embedded) == len(dcgan_report["tensors"])

    def test_html_is_deterministic(self, dcgan_report):
        assert render_insight_html(dcgan_report) == render_insight_html(
            dcgan_report
        )

    def test_write_insight_html(self, dcgan_report, tmp_path):
        path = tmp_path / "report.html"
        write_insight_html(dcgan_report, str(path), top=3)
        content = path.read_text()
        assert INSIGHT_SCHEMA in content
