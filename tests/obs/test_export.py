"""Exporters: Chrome trace_event JSON, canonical JSONL, digests."""

import json

import pytest

from repro.obs import (
    EventTracer,
    canonical_digest,
    chrome_json,
    combine_chrome,
    from_jsonl,
    to_chrome,
    to_jsonl,
    validate_chrome,
    write_chrome,
)


def small_trace():
    tracer = EventTracer()
    tracer.begin("step", "step", ts=0.0, step=0)
    tracer.complete("xfer", "channel", ts=0.1, dur=0.2, track="promote", nbytes=4096)
    tracer.instant("case3", "prefetch", ts=0.25, track="prefetch", interval=1)
    tracer.end("step", "step", ts=0.5)
    return tracer.events


class TestChromeExport:
    def test_roundtrips_through_json_and_validates(self):
        obj = to_chrome(small_trace())
        reloaded = json.loads(json.dumps(obj))
        assert validate_chrome(reloaded) == 4

    def test_timestamps_are_microseconds(self):
        obj = to_chrome(small_trace())
        xfer = next(r for r in obj["traceEvents"] if r.get("name") == "xfer")
        assert xfer["ts"] == pytest.approx(0.1e6)
        assert xfer["dur"] == pytest.approx(0.2e6)

    def test_tracks_become_named_threads(self):
        obj = to_chrome(small_trace())
        names = {
            row["args"]["name"]
            for row in obj["traceEvents"]
            if row["name"] == "thread_name"
        }
        assert names == {"main", "promote", "prefetch"}
        # Events on different tracks carry different tids.
        tids = {
            row["tid"]
            for row in obj["traceEvents"]
            if row.get("ph") not in ("M",)
        }
        assert len(tids) == 3

    def test_write_chrome_produces_loadable_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome(small_trace(), str(path), process_name="unit")
        obj = json.loads(path.read_text())
        assert validate_chrome(obj) == 4
        process = next(
            row for row in obj["traceEvents"] if row["name"] == "process_name"
        )
        assert process["args"]["name"] == "unit"

    def test_chrome_json_is_deterministic(self):
        assert chrome_json(small_trace()) == chrome_json(small_trace())

    def test_combine_assigns_one_pid_per_trace(self):
        combined = combine_chrome([("a", small_trace()), ("b", small_trace())])
        pids = {row["pid"] for row in combined["traceEvents"]}
        assert pids == {0, 1}
        assert validate_chrome(combined) == 8


class TestStableTids:
    def test_pinned_tracks_keep_their_tids(self):
        obj = to_chrome(small_trace(), tids={"prefetch": 7, "main": 2})
        tids = {
            row["args"]["name"]: row["tid"]
            for row in obj["traceEvents"]
            if row["name"] == "thread_name"
        }
        assert tids["prefetch"] == 7
        assert tids["main"] == 2
        # The unpinned track gets the smallest unused id.
        assert tids["promote"] == 0

    def test_default_numbering_unchanged_by_tids_none(self):
        assert chrome_json(small_trace()) == chrome_json(
            small_trace(), tids=None
        )

    def test_no_collision_between_pinned_and_assigned(self):
        # Regression: pinning tid 0 used to let the first unpinned track
        # also take 0 under pure first-appearance numbering.
        obj = to_chrome(small_trace(), tids={"prefetch": 0})
        tids = [
            row["tid"]
            for row in obj["traceEvents"]
            if row["name"] == "thread_name"
        ]
        assert len(tids) == len(set(tids))

    def test_duplicate_tid_values_rejected(self):
        with pytest.raises(ValueError, match="tid map"):
            to_chrome(small_trace(), tids={"a": 1, "b": 1})

    def test_events_follow_their_pinned_track(self):
        obj = to_chrome(small_trace(), tids={"promote": 5})
        xfer = next(r for r in obj["traceEvents"] if r.get("name") == "xfer")
        assert xfer["tid"] == 5


class TestValidateChrome:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome([])

    def test_rejects_bad_category(self):
        obj = to_chrome(small_trace())
        obj["traceEvents"][-1]["cat"] = "bogus"
        with pytest.raises(ValueError, match="category"):
            validate_chrome(obj)

    def test_rejects_missing_duration_on_complete_event(self):
        obj = to_chrome(small_trace())
        for row in obj["traceEvents"]:
            row.pop("dur", None)
        with pytest.raises(ValueError):
            validate_chrome(obj)


class TestJsonl:
    def test_one_line_per_event_sorted_keys(self):
        text = to_jsonl(small_trace())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)

    def test_digest_is_stable_and_content_sensitive(self):
        events = small_trace()
        assert canonical_digest(events) == canonical_digest(small_trace())
        tracer = EventTracer()
        tracer.instant("other", "fault", ts=0.0)
        assert canonical_digest(events) != canonical_digest(tracer.events)

    def test_exotic_arg_values_are_stringified(self):
        tracer = EventTracer()
        tracer.instant("x", "chaos", ts=0.0, tag=object())
        record = json.loads(to_jsonl(tracer.events))
        assert isinstance(record["args"]["tag"], str)


class TestFromJsonl:
    def test_round_trip_preserves_canonical_digest(self):
        events = small_trace()
        reimported = from_jsonl(to_jsonl(events))
        assert canonical_digest(reimported) == canonical_digest(events)
        # Re-export is a fixed point, not just digest-equal once.
        assert to_jsonl(from_jsonl(to_jsonl(reimported))) == to_jsonl(events)

    def test_zero_event_trace_round_trips(self):
        assert from_jsonl(to_jsonl([])) == []
        assert from_jsonl("") == []
        assert canonical_digest(from_jsonl("")) == canonical_digest([])

    def test_truncated_window_round_trips_surviving_events(self):
        # A ring-overwritten trace exports only the surviving window; the
        # dropped count does not travel, but the window itself is stable.
        tracer = EventTracer(capacity=2)
        for index in range(5):
            tracer.instant("tick", "step", ts=float(index), n=index)
        assert tracer.dropped == 3
        events = tracer.events
        assert len(events) == 2
        reimported = from_jsonl(to_jsonl(events))
        assert canonical_digest(reimported) == canonical_digest(events)
        assert [e.args["n"] for e in reimported] == [3, 4]

    def test_blank_lines_skipped(self):
        text = "\n" + to_jsonl(small_trace()) + "\n\n"
        assert len(from_jsonl(text)) == 4

    def test_malformed_line_names_line_number(self):
        text = to_jsonl(small_trace()) + "not json\n"
        with pytest.raises(ValueError, match="line 5"):
            from_jsonl(text)

    def test_rejects_unknown_category_and_missing_keys(self):
        with pytest.raises(ValueError, match="category"):
            from_jsonl(
                json.dumps(
                    {
                        "name": "x", "cat": "bogus", "ph": "i", "ts": 0.0,
                        "dur": 0.0, "track": "main", "args": {},
                    }
                )
            )
        with pytest.raises(ValueError, match="missing keys"):
            from_jsonl(json.dumps({"name": "x"}))
