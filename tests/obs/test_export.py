"""Exporters: Chrome trace_event JSON, canonical JSONL, digests."""

import json

import pytest

from repro.obs import (
    EventTracer,
    canonical_digest,
    chrome_json,
    combine_chrome,
    to_chrome,
    to_jsonl,
    validate_chrome,
    write_chrome,
)


def small_trace():
    tracer = EventTracer()
    tracer.begin("step", "step", ts=0.0, step=0)
    tracer.complete("xfer", "channel", ts=0.1, dur=0.2, track="promote", nbytes=4096)
    tracer.instant("case3", "prefetch", ts=0.25, track="prefetch", interval=1)
    tracer.end("step", "step", ts=0.5)
    return tracer.events


class TestChromeExport:
    def test_roundtrips_through_json_and_validates(self):
        obj = to_chrome(small_trace())
        reloaded = json.loads(json.dumps(obj))
        assert validate_chrome(reloaded) == 4

    def test_timestamps_are_microseconds(self):
        obj = to_chrome(small_trace())
        xfer = next(r for r in obj["traceEvents"] if r.get("name") == "xfer")
        assert xfer["ts"] == pytest.approx(0.1e6)
        assert xfer["dur"] == pytest.approx(0.2e6)

    def test_tracks_become_named_threads(self):
        obj = to_chrome(small_trace())
        names = {
            row["args"]["name"]
            for row in obj["traceEvents"]
            if row["name"] == "thread_name"
        }
        assert names == {"main", "promote", "prefetch"}
        # Events on different tracks carry different tids.
        tids = {
            row["tid"]
            for row in obj["traceEvents"]
            if row.get("ph") not in ("M",)
        }
        assert len(tids) == 3

    def test_write_chrome_produces_loadable_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome(small_trace(), str(path), process_name="unit")
        obj = json.loads(path.read_text())
        assert validate_chrome(obj) == 4
        process = next(
            row for row in obj["traceEvents"] if row["name"] == "process_name"
        )
        assert process["args"]["name"] == "unit"

    def test_chrome_json_is_deterministic(self):
        assert chrome_json(small_trace()) == chrome_json(small_trace())

    def test_combine_assigns_one_pid_per_trace(self):
        combined = combine_chrome([("a", small_trace()), ("b", small_trace())])
        pids = {row["pid"] for row in combined["traceEvents"]}
        assert pids == {0, 1}
        assert validate_chrome(combined) == 8


class TestValidateChrome:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome([])

    def test_rejects_bad_category(self):
        obj = to_chrome(small_trace())
        obj["traceEvents"][-1]["cat"] = "bogus"
        with pytest.raises(ValueError, match="category"):
            validate_chrome(obj)

    def test_rejects_missing_duration_on_complete_event(self):
        obj = to_chrome(small_trace())
        for row in obj["traceEvents"]:
            row.pop("dur", None)
        with pytest.raises(ValueError):
            validate_chrome(obj)


class TestJsonl:
    def test_one_line_per_event_sorted_keys(self):
        text = to_jsonl(small_trace())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)

    def test_digest_is_stable_and_content_sensitive(self):
        events = small_trace()
        assert canonical_digest(events) == canonical_digest(small_trace())
        tracer = EventTracer()
        tracer.instant("other", "fault", ts=0.0)
        assert canonical_digest(events) != canonical_digest(tracer.events)

    def test_exotic_arg_values_are_stringified(self):
        tracer = EventTracer()
        tracer.instant("x", "chaos", ts=0.0, tag=object())
        record = json.loads(to_jsonl(tracer.events))
        assert isinstance(record["args"]["tag"], str)
