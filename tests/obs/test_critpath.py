"""Critical-path attribution: exact-sum decomposition, DAG construction,
longest-path extraction, what-if queries, truncation refusal."""

import pytest

from repro.errors import TraceTruncatedError
from repro.obs import EventTracer
from repro.obs.critpath import (
    DagNode,
    StepDag,
    attribute,
    build_step_dags,
    critical_path,
)


def build_tracer():
    """One synthetic 10s step: two layers, a promote transfer with queueing,
    a reclaim-tagged demote, and boundary stalls on the step-end event."""
    tracer = EventTracer()
    tracer.begin("step", "step", ts=0.0, step=0)
    tracer.begin("layer", "step", ts=0.5, layer=0)
    tracer.end("layer", "step", ts=4.5, exec=3.0, stall=0.75, fault=0.25)
    tracer.begin("layer", "step", ts=4.5, layer=1)
    tracer.end("layer", "step", ts=9.75, exec=4.0, stall=1.0, fault=0.0)
    tracer.end("step", "step", ts=10.0, step=0, pre_stall=0.5, post_stall=0.25)
    tracer.complete(
        "xfer", "channel", ts=1.0, dur=2.0, track="promote", nbytes=4096, queued=1.2
    )
    tracer.complete(
        "xfer",
        "channel",
        ts=3.5,
        dur=1.0,
        track="demote",
        nbytes=2048,
        tag="pressure-reclaim",
    )
    tracer.complete("promote", "migration", ts=1.0, dur=2.0, nbytes=4096)
    return tracer


class TestAttribute:
    def test_exact_component_decomposition(self):
        (step,) = attribute(build_tracer().events).steps
        assert step.duration == 10.0
        assert step.compute == pytest.approx(7.0)
        assert step.fault == pytest.approx(0.25)
        # stall total 2.5 = layer stalls 1.75 + boundary stalls 0.75,
        # subdivided: contention capped by queued evidence, reclaim by
        # in-window tagged service time, remainder is migration stall.
        assert step.channel_contention == pytest.approx(1.2)
        assert step.pressure_reclaim == pytest.approx(1.0)
        assert step.migration_stall == pytest.approx(0.3)
        assert step.stall == pytest.approx(2.5)
        assert step.idle == pytest.approx(0.25)
        assert sum(step.components().values()) == pytest.approx(step.duration)

    def test_aborted_channel_spans_carry_no_evidence(self):
        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0, step=0)
        tracer.begin("layer", "step", ts=0.0, layer=0)
        tracer.end("layer", "step", ts=4.0, exec=2.0, stall=2.0, fault=0.0)
        tracer.end("step", "step", ts=4.0, step=0)
        tracer.complete(
            "xfer",
            "channel",
            ts=1.0,
            dur=1.0,
            track="promote",
            queued=5.0,
            aborted=True,
        )
        (step,) = attribute(tracer.events).steps
        assert step.channel_contention == 0.0
        assert step.migration_stall == pytest.approx(2.0)

    def test_contention_capped_by_stall(self):
        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0, step=0)
        tracer.begin("layer", "step", ts=0.0, layer=0)
        tracer.end("layer", "step", ts=4.0, exec=3.5, stall=0.5, fault=0.0)
        tracer.end("step", "step", ts=4.0, step=0)
        tracer.complete(
            "xfer", "channel", ts=0.5, dur=1.0, track="demand-promote", queued=99.0
        )
        (step,) = attribute(tracer.events).steps
        assert step.channel_contention == pytest.approx(0.5)
        assert step.migration_stall == 0.0
        assert sum(step.components().values()) == pytest.approx(4.0)

    def test_refuses_truncated_trace(self):
        events = build_tracer().events
        with pytest.raises(TraceTruncatedError) as excinfo:
            attribute(events, dropped=3)
        assert excinfo.value.dropped == 3
        assert "attribution may be partial" in str(excinfo.value)
        with pytest.raises(TraceTruncatedError):
            build_step_dags(events, dropped=1)

    def test_what_if_queries(self):
        (step,) = attribute(build_tracer().events).steps
        assert step.free_migration_time == pytest.approx(step.duration - 2.5)
        assert step.bandwidth_scaled_time(2.0) == pytest.approx(
            step.duration - 1.25
        )
        # Infinite bandwidth converges on the free-migration bound.
        assert step.bandwidth_scaled_time(1e12) == pytest.approx(
            step.free_migration_time
        )
        with pytest.raises(ValueError):
            step.bandwidth_scaled_time(0.0)

    def test_aggregation_over_steps(self):
        tracer = EventTracer()
        for index, width in enumerate((4.0, 2.0, 3.0)):
            start = sum((4.0, 2.0, 3.0)[:index])
            tracer.begin("step", "step", ts=start, step=index)
            tracer.begin("layer", "step", ts=start, layer=0)
            tracer.end("layer", "step", ts=start + width, exec=width, stall=0.0, fault=0.0)
            tracer.end("step", "step", ts=start + width, step=index)
        attribution = attribute(tracer.events)
        assert len(attribution) == 3
        assert attribution.median_step_time() == 3.0
        assert attribution.median_step_time(last=2) == 2.5
        assert attribution.totals()["compute"] == pytest.approx(9.0)
        assert attribution.what_if_free_migration() == 3.0

    def test_empty_attribution_rejects_statistics(self):
        attribution = attribute([])
        assert len(attribution) == 0
        with pytest.raises(ValueError):
            attribution.median_step_time()


class TestStepDag:
    def test_boundary_chain_is_contiguous_and_spans_the_step(self):
        (dag,) = build_step_dags(build_tracer().events)
        chain = [n for n in dag.nodes if n.kind in ("boundary", "layer")]
        assert [n.label for n in chain] == [
            "step-begin",
            "layer0",
            "layer1",
            "step-end",
        ]
        for src, dst in zip(chain, chain[1:]):
            assert src.end == dst.start
        assert sum(n.duration for n in chain) == pytest.approx(dag.makespan)

    def test_every_edge_is_happens_before(self):
        (dag,) = build_step_dags(build_tracer().events)
        for src, dsts in dag.edges.items():
            for dst in dsts:
                assert dag.node(src).end <= dag.node(dst).start

    def test_transfer_links_to_submitter_and_consumer(self):
        (dag,) = build_step_dags(build_tracer().events)
        (mig,) = [n for n in dag.nodes if n.kind == "migration"]
        preds = dag.predecessors()
        # Starts at 1.0, before any layer has finished: submitted from the
        # step-begin boundary; finishing at 3.0, it unblocks layer1.
        assert [dag.node(uid).label for uid in preds[mig.uid]] == ["step-begin"]
        assert "layer1" in [dag.node(uid).label for uid in dag.edges[mig.uid]]

    def test_channel_fifo_order_within_track(self):
        tracer = build_tracer()
        tracer.complete(
            "xfer", "channel", ts=3.2, dur=0.5, track="promote", nbytes=64
        )
        (dag,) = build_step_dags(tracer.events)
        promote = [n for n in dag.nodes if n.label == "promote:xfer"]
        assert len(promote) == 2
        first, second = sorted(promote, key=lambda n: n.start)
        assert second.uid in dag.edges[first.uid]

    def test_nodes_clip_to_step_window(self):
        tracer = build_tracer()
        tracer.complete("demote", "migration", ts=9.0, dur=5.0, nbytes=128)
        (dag,) = build_step_dags(tracer.events)
        late = [n for n in dag.nodes if n.kind == "migration" and n.start == 9.0]
        assert late and late[0].end == 10.0

    def test_one_dag_per_step(self):
        tracer = EventTracer()
        for index in range(2):
            start = float(index)
            tracer.begin("step", "step", ts=start, step=index)
            tracer.end("step", "step", ts=start + 1.0, step=index)
        dags = build_step_dags(tracer.events)
        assert [dag.step for dag in dags] == [0, 1]


class TestCriticalPath:
    def test_length_equals_makespan(self):
        (dag,) = build_step_dags(build_tracer().events)
        path = critical_path(dag)
        assert sum(n.duration for n in path) == pytest.approx(dag.makespan)
        for src, dst in zip(path, path[1:]):
            assert dst.uid in dag.edges[src.uid]

    def test_zero_duration_nodes_do_not_break_ordering(self):
        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0, step=0)
        tracer.begin("layer", "step", ts=0.0, layer=0)
        tracer.end("layer", "step", ts=0.0, exec=0.0, stall=0.0, fault=0.0)
        tracer.begin("layer", "step", ts=0.0, layer=1)
        tracer.end("layer", "step", ts=2.0, exec=2.0, stall=0.0, fault=0.0)
        tracer.end("step", "step", ts=2.0, step=0)
        (dag,) = build_step_dags(tracer.events)
        path = critical_path(dag)
        assert sum(n.duration for n in path) == pytest.approx(dag.makespan)

    def test_cycle_raises(self):
        nodes = [
            DagNode(uid=0, kind="layer", label="a", start=0.0, end=0.0),
            DagNode(uid=1, kind="layer", label="b", start=0.0, end=0.0),
        ]
        dag = StepDag(
            step=0, start=0.0, end=1.0, nodes=nodes, edges={0: [1], 1: [0]}
        )
        with pytest.raises(ValueError, match="cycle"):
            critical_path(dag)

    def test_empty_dag(self):
        dag = StepDag(step=0, start=0.0, end=0.0, nodes=[], edges={})
        assert critical_path(dag) == []
