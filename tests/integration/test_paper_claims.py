"""End-to-end checks of the paper's headline claims (shapes, not numbers).

These are the acceptance tests of the reproduction: each asserts a
qualitative relationship the paper reports, with generous margins because
our substrate is a simulator, not the authors' testbed.
"""

import pytest

from repro.harness.runner import run_policy
from repro.mem.platforms import GPU_HM, OPTANE_HM


@pytest.fixture(scope="module")
def cpu_results():
    """ResNet-32 at 20%-of-peak fast memory across all CPU policies."""
    out = {}
    for policy in ("slow-only", "fast-only", "first-touch", "memory-mode", "ial", "autotm", "sentinel"):
        fraction = None if policy in ("slow-only", "fast-only") else 0.2
        out[policy] = run_policy(
            policy, model="resnet32", batch_size=256, fast_fraction=fraction
        )
    return out


@pytest.fixture(scope="module")
def gpu_results():
    """ResNet-200 at ~1.4x device memory across all GPU policies."""
    out = {}
    for policy in ("unified-memory", "autotm", "swapadvisor", "capuchin", "sentinel-gpu"):
        out[policy] = run_policy(
            policy, model="resnet200", batch_size=48, platform=GPU_HM
        )
    return out


class TestOptanePlatform:
    def test_slow_only_is_several_times_slower_than_fast_only(self, cpu_results):
        ratio = cpu_results["slow-only"].step_time / cpu_results["fast-only"].step_time
        assert 2.0 < ratio < 10.0

    def test_sentinel_close_to_fast_only_at_20_percent(self, cpu_results):
        """Headline claim: ~9% average gap at a 5x fast-memory reduction;
        we accept up to 60% for a single model on a simulator."""
        gap = cpu_results["sentinel"].step_time / cpu_results["fast-only"].step_time
        assert gap < 1.6

    def test_sentinel_beats_every_cpu_baseline(self, cpu_results):
        sentinel = cpu_results["sentinel"].step_time
        for baseline in ("slow-only", "first-touch", "memory-mode", "ial", "autotm"):
            assert sentinel < cpu_results[baseline].step_time, baseline

    def test_sentinel_beats_first_touch_substantially(self, cpu_results):
        """Paper: +70% over first-touch NUMA."""
        ratio = cpu_results["first-touch"].step_time / cpu_results["sentinel"].step_time
        assert ratio > 1.3

    def test_sentinel_migrates_more_than_autotm_but_hides_it(self, cpu_results):
        """Table IV's counterintuitive point: Sentinel moves plenty of data
        yet stays fastest because migration overlaps compute."""
        assert cpu_results["sentinel"].migrated_bytes > 0
        assert cpu_results["autotm"].stall_time > cpu_results["sentinel"].stall_time

    def test_sentinel_uses_fast_memory_bandwidth_more_than_ial(self, cpu_results):
        """Figure 9: Sentinel serves far more traffic from DRAM than IAL."""
        assert cpu_results["sentinel"].bytes_fast > cpu_results["ial"].bytes_fast

    def test_profiling_overhead_is_amortizable(self, cpu_results):
        """<1% over a realistic training run (paper §VII-B)."""
        metrics = cpu_results["sentinel"]
        slowdown = metrics.extras["profiling_step_time"] / metrics.step_time
        overhead_steps = metrics.extras["profiling_steps"] + metrics.extras["trial_steps"]
        total_steps = 100_000  # a short real training job
        overhead = overhead_steps * (slowdown - 1.0) / total_steps
        assert overhead < 0.01

    def test_memory_overhead_small(self, cpu_results):
        assert cpu_results["sentinel"].extras["memory_overhead"] < 0.03


class TestGPUPlatform:
    def test_unified_memory_is_the_floor(self, gpu_results):
        um = gpu_results["unified-memory"].step_time
        for policy in ("autotm", "swapadvisor", "capuchin", "sentinel-gpu"):
            assert gpu_results[policy].step_time < um, policy

    def test_sentinel_gpu_is_the_ceiling(self, gpu_results):
        sentinel = gpu_results["sentinel-gpu"].step_time
        for policy in ("unified-memory", "autotm", "swapadvisor", "capuchin"):
            assert sentinel < gpu_results[policy].step_time, policy

    def test_sentinel_beats_capuchin_modestly(self, gpu_results):
        """Paper: 16% average (up to 21%); allow a wide band."""
        ratio = gpu_results["capuchin"].step_time / gpu_results["sentinel-gpu"].step_time
        assert 1.0 < ratio < 3.0

    def test_capuchin_pays_recompute_sentinel_does_not(self, gpu_results):
        assert gpu_results["capuchin"].extras.get("recompute_time", 0) > 0
        assert gpu_results["sentinel-gpu"].extras.get("recompute_time", 0) == 0

    def test_oversubscription_actually_happened(self, gpu_results):
        for metrics in gpu_results.values():
            assert metrics.migrated_bytes > 0 or metrics.policy == "unified-memory"


class TestSensitivityShape:
    def test_more_fast_memory_never_hurts(self):
        times = []
        for fraction in (0.2, 0.4, 0.6):
            metrics = run_policy(
                "sentinel", model="resnet32", batch_size=128, fast_fraction=fraction
            )
            times.append(metrics.step_time)
        assert times[0] >= times[1] >= times[2] * 0.98

    def test_parity_reached_by_60_percent(self):
        """Figure 10: no performance loss at 60% of peak."""
        fast = run_policy("fast-only", model="resnet32", batch_size=128)
        sentinel = run_policy(
            "sentinel", model="resnet32", batch_size=128, fast_fraction=0.6
        )
        assert sentinel.step_time <= fast.step_time * 1.15
