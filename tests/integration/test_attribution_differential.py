"""Differential suite for the critical-path attribution engine.

Two independent measurements of the same runs must agree:

* the trace-derived per-step decomposition must sum exactly (within float
  tolerance) to the measured step duration — on every zoo model, at the
  paper's 20% fast-memory operating point;
* the critical path extracted from the reconstructed dependency DAG must
  be a real path (consecutive nodes connected by edges) whose summed
  duration equals the step makespan — on random graphs via hypothesis.
"""

import pytest
from hypothesis import given, strategies as st

from repro.harness.runner import STEADY_STEPS, run_policy
from repro.models.zoo import MODELS
from repro.obs import EventTracer
from repro.obs.critpath import attribute, build_step_dags, critical_path

from tests.integration.test_trace_invariants import (
    INVARIANT_SETTINGS,
    traced_sentinel_run,
)

#: Attribution components and DAG path lengths are sums of dozens of
#: trace-derived floats; this bounds their accumulated rounding error.
SUM_TOLERANCE = 1e-6


def traced_run(model, policy="sentinel", fast_fraction=0.2):
    tracer = EventTracer(capacity=1 << 18)
    metrics = run_policy(
        policy, model=model, fast_fraction=fast_fraction, tracer=tracer
    )
    assert tracer.dropped == 0, "raise capacity: attribution needs full traces"
    return tracer, metrics


class TestExactSumOnZoo:
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_components_sum_to_step_duration(self, model):
        tracer, _ = traced_run(model)
        attribution = attribute(tracer.events, dropped=tracer.dropped)
        assert len(attribution) > 0
        for step in attribution:
            components = step.components()
            assert sum(components.values()) == pytest.approx(
                step.duration, abs=SUM_TOLERANCE
            ), (model, step.step, components)
            for name, value in components.items():
                assert value >= 0.0, (model, step.step, name)

    def test_measured_step_agrees_with_runner_counters(self):
        # The attribution of the measured (last) step must reproduce the
        # executor's own counters for it: same stall, same fault time.
        tracer, metrics = traced_run("dcgan")
        last = attribute(tracer.events, dropped=tracer.dropped).steps[-1]
        assert last.duration == pytest.approx(metrics.step_time, abs=1e-9)
        assert last.stall == pytest.approx(metrics.stall_time, abs=1e-9)
        assert last.fault == pytest.approx(metrics.fault_time, abs=1e-9)


class TestWhatIfBounds:
    def test_free_migration_bounds_measured_sentinel_speedup(self):
        # The free-migration what-if is a lower bound on achievable step
        # time, so the speedup it implies must be at least the speedup any
        # real policy change could deliver from the same schedule — in
        # particular it can never fall below 1x, and the hypothetical step
        # time can never exceed the measured one.
        for model in ("dcgan", "lstm", "resnet32"):
            tracer, metrics = traced_run(model)
            attribution = attribute(tracer.events, dropped=tracer.dropped)
            measured = attribution.median_step_time(last=STEADY_STEPS)
            free = attribution.what_if_free_migration(last=STEADY_STEPS)
            assert free <= measured + SUM_TOLERANCE, model
            assert free >= 0.0, model
            # Bandwidth scaling interpolates between measured and free.
            doubled = attribution.what_if_bandwidth_scale(
                2.0, last=STEADY_STEPS
            )
            assert free - SUM_TOLERANCE <= doubled <= measured + SUM_TOLERANCE


class TestCriticalPathProperty:
    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_critical_path_is_a_real_path_with_makespan_length(self, seed):
        query, _ = traced_sentinel_run(seed)
        dags = build_step_dags(query.events)
        assert dags, "run produced no step DAGs"
        for dag in dags:
            path = critical_path(dag)
            assert path, f"step {dag.step}: empty critical path"
            # A real path: every consecutive pair is an edge of the DAG.
            for src, dst in zip(path, path[1:]):
                assert dst.uid in dag.edges[src.uid], (
                    f"step {dag.step}: {src.label} -> {dst.label} is not an edge"
                )
            # Longest-path length is exactly the step makespan.
            length = sum(node.duration for node in path)
            assert length == pytest.approx(dag.makespan, abs=SUM_TOLERANCE), (
                f"step {dag.step}: path {length} != makespan {dag.makespan}"
            )

    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_attribution_sums_hold_under_chaos(self, seed):
        query, _ = traced_sentinel_run(seed, fault_rate=0.2)
        for step in attribute(query.events):
            assert sum(step.components().values()) == pytest.approx(
                step.duration, abs=SUM_TOLERANCE
            )
