"""Fuzzing: every policy must survive arbitrary valid workloads.

The synthetic generator produces graphs no code path was tuned on; any
crash, accounting violation, or non-determinism here is a real bug in the
substrate or a policy.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.registry import GPU_ONLY, POLICIES, make_policy
from repro.core import DynamicProfiler, SentinelConfig
from repro.dnn.executor import Executor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models.synthetic import random_graph

CPU_POLICIES = sorted(name for name in POLICIES if name not in GPU_ONLY)

FUZZ_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestGenerator:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_graphs_are_valid_and_deterministic(self, seed):
        graph = random_graph(seed)
        again = random_graph(seed)
        assert graph.signature() == again.signature()
        assert graph.num_layers >= 5
        assert graph.peak_memory_bytes() > 0
        # Builder invariants held: every step tensor has a lifetime window.
        for tensor in graph.step_tensors():
            assert tensor.free_layer is not None
            assert tensor.alloc_layer <= tensor.free_layer

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_profiler_matches_ground_truth_on_random_graphs(self, seed):
        graph = random_graph(seed, max_layers=10, max_tensor_bytes=1 << 22)
        profile = DynamicProfiler(OPTANE_HM).run(graph).profile
        for tensor in graph.tensors:
            assert profile.tensors[tensor.tid].touches_by_layer == tensor.layer_touches


class TestPolicyFuzz:
    @pytest.mark.parametrize("policy_name", CPU_POLICIES)
    @given(seed=st.integers(min_value=0, max_value=10**4))
    @FUZZ_SETTINGS
    def test_cpu_policies_survive_random_workloads(self, policy_name, seed):
        graph = random_graph(seed, max_layers=10, max_tensor_bytes=1 << 22)
        fraction = None if policy_name in ("slow-only", "fast-only") else 0.3
        capacity = None
        if fraction is not None:
            capacity = max(
                OPTANE_HM.page_size * 128, int(graph.peak_memory_bytes() * fraction)
            )
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=capacity)
        policy = make_policy(
            policy_name, sentinel_config=SentinelConfig(warmup_steps=1)
        )
        executor = Executor(graph, machine, policy)
        results = executor.run_steps(3)

        machine.migration.sync(float("inf"))
        assert 0 <= machine.fast.used <= machine.fast.capacity
        assert machine.page_table.bytes_on(DeviceKind.FAST) == machine.fast.used
        assert machine.page_table.bytes_on(DeviceKind.SLOW) == machine.slow.used
        assert all(r.duration > 0 for r in results)

    @given(seed=st.integers(min_value=0, max_value=10**4))
    @FUZZ_SETTINGS
    def test_sentinel_deterministic_on_random_workloads(self, seed):
        def run():
            graph = random_graph(seed, max_layers=8, max_tensor_bytes=1 << 21)
            machine = Machine.for_platform(
                OPTANE_HM,
                fast_capacity=max(
                    OPTANE_HM.page_size * 128,
                    int(graph.peak_memory_bytes() * 0.3),
                ),
            )
            policy = make_policy(
                "sentinel", sentinel_config=SentinelConfig(warmup_steps=1)
            )
            return [r.duration for r in Executor(graph, machine, policy).run_steps(4)]

        assert run() == run()
