"""Failure injection and degenerate configurations.

A production runtime must fail loudly on misuse and stay consistent when a
component errors mid-step.  These tests poke the seams: policies that raise,
machines too small to hold anything, graphs at the edge of validity.
"""

import pytest

from repro.baselines.registry import GPU_ONLY, POLICIES, make_policy
from repro.chaos import ChaosConfig
from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.dnn.executor import ExecutionError, Executor
from repro.dnn.graph import GraphBuilder
from repro.dnn.policy import PlacementPolicy, ResidencyError
from repro.harness.runner import run_policy
from repro.harness.sweeps import point_seed
from repro.mem.devices import DeviceFullError, DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM
from repro.models import build_model


class TestPolicyFailures:
    def test_policy_exception_mid_step_leaves_machine_consistent(self):
        class Exploder(PlacementPolicy):
            def __init__(self):
                super().__init__()
                self.accesses = 0

            def charge_access(self, tensor, mapping, access, now):
                self.accesses += 1
                if self.accesses == 20:
                    raise RuntimeError("injected failure")
                return super().charge_access(tensor, mapping, access, now)

        graph = build_model("dcgan", batch_size=8)
        machine = Machine(OPTANE_HM)
        executor = Executor(graph, machine, Exploder())
        with pytest.raises(RuntimeError, match="injected failure"):
            executor.run_step()
        # The machine's books still balance: no negative usage, every
        # mapped run charged to its device.
        assert 0 <= machine.slow.used <= machine.slow.capacity
        assert machine.page_table.bytes_on(DeviceKind.SLOW) == machine.slow.used

    def test_policy_placing_into_full_fast_raises_cleanly(self):
        class BadPlacer(PlacementPolicy):
            def place(self, tensor, now):
                return DeviceKind.FAST  # regardless of capacity

        graph = build_model("dcgan", batch_size=64)
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 20)
        with pytest.raises(DeviceFullError):
            Executor(graph, machine, BadPlacer()).run_step()


class TestDegenerateMachines:
    def test_sentinel_survives_fast_memory_of_one_slab(self):
        """Far below the §IV-E lower bound: degraded but correct."""
        graph = build_model("dcgan", batch_size=8)
        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=OPTANE_HM.page_size * 64
        )
        policy = SentinelPolicy(SentinelConfig(warmup_steps=1))
        executor = Executor(graph, machine, policy)
        results = executor.run_steps(4)
        assert all(r.duration > 0 for r in results)
        assert machine.fast.used <= machine.fast.capacity

    def test_gpu_policy_without_room_for_largest_tensor_oom(self):
        """Residency platforms cannot run below the largest working tensor."""
        graph = build_model("dcgan", batch_size=256)
        largest = max(t.nbytes for t in graph.tensors)
        machine = Machine.for_platform(GPU_HM, fast_capacity=max(4096, largest // 4))
        policy = make_policy("unified-memory")
        with pytest.raises((ResidencyError, DeviceFullError)):
            Executor(graph, machine, policy).run_steps(2)

    def test_sentinel_with_zero_warmup(self):
        graph = build_model("dcgan", batch_size=8)
        machine = Machine(OPTANE_HM)
        policy = SentinelPolicy(SentinelConfig(warmup_steps=0))
        executor = Executor(graph, machine, policy)
        executor.run_steps(2)
        assert policy.profile is not None  # step 0 was the profiling step


class TestGracefulDegradation:
    """The acceptance bar for fault injection: every policy completes at a
    20% fault rate, with the invariant auditor attached, and throughput
    only degrades."""

    MODEL = "dcgan"

    @pytest.mark.parametrize("policy", sorted(set(POLICIES) - GPU_ONLY))
    def test_cpu_policies_complete_under_heavy_faults(self, policy):
        fraction = None if policy in ("slow-only", "fast-only") else 0.2
        chaos = ChaosConfig.uniform(0.2, seed=point_seed(0, policy, self.MODEL))
        metrics = run_policy(
            policy,
            model=self.MODEL,
            fast_fraction=fraction,
            chaos=chaos,
            audit=True,
        )
        assert metrics.step_time > 0

    @pytest.mark.parametrize("policy", ["unified-memory", "sentinel-gpu"])
    def test_gpu_policies_complete_under_heavy_faults(self, policy):
        chaos = ChaosConfig.uniform(0.2, seed=point_seed(0, policy, self.MODEL))
        metrics = run_policy(
            policy,
            model=self.MODEL,
            platform=GPU_HM,
            fast_fraction=0.5,
            chaos=chaos,
            audit=True,
        )
        assert metrics.step_time > 0

    def test_faults_only_slow_things_down(self):
        clean = run_policy("sentinel", model=self.MODEL, fast_fraction=0.2)
        chaotic = run_policy(
            "sentinel",
            model=self.MODEL,
            fast_fraction=0.2,
            chaos=ChaosConfig.uniform(0.2, seed=17),
            audit=True,
        )
        # Within-noise tolerance: throttling/retries may not hit the one
        # measured step, but they can never make it meaningfully faster.
        assert chaotic.throughput <= clean.throughput * 1.02

    def test_lossy_profile_triggers_bounded_reprofiling(self):
        chaos = ChaosConfig(seed=3, profile_drop_rate=0.5)
        metrics = run_policy(
            "sentinel", model=self.MODEL, fast_fraction=0.2, chaos=chaos
        )
        assert metrics.extras["reprofile_steps"] == 1  # capped by the budget

    def test_clean_profile_never_reprofiles(self):
        chaos = ChaosConfig(seed=3, migration_busy_rate=0.2)  # no sample loss
        metrics = run_policy(
            "sentinel", model=self.MODEL, fast_fraction=0.2, chaos=chaos
        )
        assert metrics.extras["reprofile_steps"] == 0

    def test_case3_deadline_degrades_waits_into_fallbacks(self):
        chaos = ChaosConfig.uniform(0.2, seed=5)
        config = SentinelConfig(warmup_steps=2, case3_wait_deadline=1e-9)
        metrics = run_policy(
            "sentinel",
            model=self.MODEL,
            fast_fraction=0.2,
            sentinel_config=config,
            chaos=chaos,
            audit=True,
        )
        # An (effectively) zero patience budget means every Case-3 event
        # takes the leave-in-slow fallback instead of stalling.
        assert metrics.extras["case3"] > 0
        assert metrics.extras["case3_fallbacks"] == metrics.extras["case3"]

    def test_unbounded_patience_never_falls_back(self):
        chaos = ChaosConfig.uniform(0.2, seed=5)
        metrics = run_policy(
            "sentinel", model=self.MODEL, fast_fraction=0.2, chaos=chaos
        )
        assert metrics.extras["case3_fallbacks"] == 0


class TestGraphEdgeCases:
    def test_single_layer_graph(self):
        builder = GraphBuilder("one", batch_size=1)
        weight = builder.weight("w", 4096)
        with builder.layer("only"):
            out = builder.tensor("out", 4096)
            builder.op("f", flops=1e6, reads=[weight], writes=[out])
        graph = builder.finish()
        machine = Machine(OPTANE_HM)
        policy = SentinelPolicy(SentinelConfig(warmup_steps=0))
        results = Executor(graph, machine, policy).run_steps(3)
        assert all(r.duration > 0 for r in results)

    def test_graph_with_only_preallocated_tensors(self):
        builder = GraphBuilder("weights-only", batch_size=1)
        weight = builder.weight("w", 8192)
        with builder.layer("touch"):
            builder.op("f", flops=1e3, reads=[weight], writes=[weight])
        graph = builder.finish()
        results = Executor(graph, Machine(OPTANE_HM), PlacementPolicy()).run_steps(2)
        assert results[0].bytes_slow > 0

    def test_unallocated_access_is_execution_error(self):
        """A tensor accessed before its alloc layer cannot happen via the
        builder; simulate the executor-level guard directly."""
        graph = build_model("dcgan", batch_size=8)
        machine = Machine(OPTANE_HM)
        executor = Executor(graph, machine, PlacementPolicy())
        # Remove a mapping behind the executor's back mid-flight.
        tensor = graph.preallocated()[0]
        executor.allocator.free(tensor, now=0.0)
        with pytest.raises(ExecutionError):
            executor.run_step()
