"""Engine-vs-inline differential: the event kernel must not move time.

``Executor.run_step()`` now drives the step body as a process on the
discrete-event engine (channel completions fire as ``TRANSFER_DONE``
events, migration commits happen at their analytic finish instants).  The
refactor's contract is *observational identity* for a single workload: the
engine changes when code runs, never what times it computes.  These tests
pin that contract by running the same (model, policy, machine) twice —
once through the engine driver, once through the retained inline lockstep
loop — and asserting per-step timings, migration traffic, and the full
trace byte stream are identical.

If one of these fails, the engine port has changed simulation semantics:
fix the engine, do not refresh goldens.
"""

import dataclasses

import pytest

from repro.baselines.registry import make_policy
from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor
from repro.errors import ExecutionError
from repro.harness.runner import EXPERIMENT_WARMUP_STEPS
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM
from repro.models.zoo import build_model
from repro.obs import EventTracer, canonical_digest

#: (model, policy, platform) points covering the zoo's families: GAN,
#: recurrent, plain conv, and the GPU flavour of Sentinel.
ZOO_POINTS = [
    ("dcgan", "sentinel", OPTANE_HM),
    ("dcgan", "ial", OPTANE_HM),
    ("lstm", "sentinel", OPTANE_HM),
    ("resnet32", "first-touch", OPTANE_HM),
    ("dcgan", "sentinel-gpu", GPU_HM),
]

STEPS = 7  # enough to cross Sentinel's warmup -> profiling -> managed phases


def build_setup(model, policy_name, platform, tracer=None):
    graph = build_model(model)
    fast_capacity = max(
        platform.page_size, int(graph.peak_memory_bytes() * 0.2)
    )
    machine = Machine.for_platform(
        platform, fast_capacity=fast_capacity, tracer=tracer
    )
    policy = make_policy(
        policy_name,
        sentinel_config=SentinelConfig(warmup_steps=EXPERIMENT_WARMUP_STEPS),
    )
    return Executor(graph, machine, policy)


def run_driver(model, policy_name, platform, driver):
    tracer = EventTracer()
    executor = build_setup(model, policy_name, platform, tracer=tracer)
    if driver == "engine":
        results = [executor.run_step() for _ in range(STEPS)]
    else:
        results = [executor._run_step_inline() for _ in range(STEPS)]
    return results, tracer.events, executor


def result_dicts(results):
    return [dataclasses.asdict(r) for r in results]


class TestEngineInlineEquivalence:
    @pytest.mark.parametrize(
        "model,policy,platform",
        ZOO_POINTS,
        ids=[f"{m}-{p}" for m, p, _ in ZOO_POINTS],
    )
    def test_per_step_results_identical(self, model, policy, platform):
        engine_results, engine_events, _ = run_driver(
            model, policy, platform, "engine"
        )
        inline_results, inline_events, _ = run_driver(
            model, policy, platform, "inline"
        )
        # Every field of every StepResult — start/end times, compute/mem/
        # stall/fault decomposition, migrated bytes, peaks, layer spans.
        assert result_dicts(engine_results) == result_dicts(inline_results)
        # And the structured event stream, byte for byte.
        assert canonical_digest(engine_events) == canonical_digest(
            inline_events
        )

    def test_migrated_bytes_match_step_by_step(self):
        engine_results, _, _ = run_driver("dcgan", "sentinel", OPTANE_HM, "engine")
        inline_results, _, _ = run_driver("dcgan", "sentinel", OPTANE_HM, "inline")
        assert [r.migrated_bytes for r in engine_results] == [
            r.migrated_bytes for r in inline_results
        ]
        # The managed phase actually migrates — the comparison is not vacuous.
        assert sum(r.migrated_bytes for r in engine_results) > 0

    def test_sentinel_phase_bookkeeping_matches(self):
        _, _, engine_exec = run_driver("dcgan", "sentinel", OPTANE_HM, "engine")
        _, _, inline_exec = run_driver("dcgan", "sentinel", OPTANE_HM, "inline")
        for policy in (engine_exec.policy, inline_exec.policy):
            assert isinstance(policy, SentinelPolicy)
        assert (
            engine_exec.policy.case2_occurrences
            == inline_exec.policy.case2_occurrences
        )
        assert (
            engine_exec.policy.case3_occurrences
            == inline_exec.policy.case3_occurrences
        )

    def test_prefetch_landed_counter_only_on_engine_path(self):
        # The landed-prefetch counters are engine subscriptions by design:
        # nonzero under the engine driver, untouched by the inline one.
        _, _, engine_exec = run_driver("dcgan", "sentinel", OPTANE_HM, "engine")
        _, _, inline_exec = run_driver("dcgan", "sentinel", OPTANE_HM, "inline")
        assert engine_exec.policy.prefetch_landed_bytes > 0
        assert inline_exec.policy.prefetch_landed_bytes == 0


class TestEventOrderDeterminism:
    """Same seed + same workload ⇒ the engine fires the *same events in the
    same order*, not merely the same aggregate numbers."""

    def fired_events(self, chaos_seed=None):
        from repro.chaos import ChaosConfig, FaultInjector
        from repro.sim.engine import Engine

        graph = build_model("dcgan")
        injector = None
        if chaos_seed is not None:
            injector = FaultInjector(ChaosConfig.uniform(0.2, seed=chaos_seed))
        machine = Machine.for_platform(
            OPTANE_HM,
            fast_capacity=max(
                OPTANE_HM.page_size, int(graph.peak_memory_bytes() * 0.2)
            ),
            injector=injector,
        )
        policy = make_policy(
            "sentinel",
            sentinel_config=SentinelConfig(warmup_steps=EXPERIMENT_WARMUP_STEPS),
        )
        engine = Engine()
        executor = Executor(graph, machine, policy, engine=engine)
        log = []
        engine.subscribe(
            None,
            lambda event: log.append(
                (event.time, event.seq, event.kind.name, event.name)
            ),
        )
        for _ in range(STEPS):
            executor.run_step()
        return log

    def test_identical_event_log_across_runs(self):
        first = self.fired_events()
        second = self.fired_events()
        assert first == second
        assert first  # the engine actually fired events

    def test_identical_event_log_under_chaos(self):
        assert self.fired_events(chaos_seed=13) == self.fired_events(
            chaos_seed=13
        )

    def test_chaos_seed_perturbs_the_event_log(self):
        assert self.fired_events(chaos_seed=13) != self.fired_events(
            chaos_seed=14
        )

    def test_event_log_spans_the_kernel_taxonomy(self):
        kinds = {kind for _, _, kind, _ in self.fired_events(chaos_seed=13)}
        assert {"TRANSFER_DONE", "FAULT"} <= kinds


class TestDriverGuards:
    def test_inline_after_engine_is_rejected(self):
        # _run_step_inline on a machine already bound to an engine would
        # silently race the queued TRANSFER_DONE events; the executor
        # refuses the second executor instead.
        executor = build_setup("dcgan", "ial", OPTANE_HM)
        executor.run_step()
        second = Executor(
            executor.graph, executor.machine, make_policy("ial")
        )
        with pytest.raises(ExecutionError, match="already driven"):
            second.run_step()

    def test_run_steps_still_validates_count(self):
        executor = build_setup("dcgan", "ial", OPTANE_HM)
        with pytest.raises(ValueError, match="positive"):
            executor.run_steps(0)
