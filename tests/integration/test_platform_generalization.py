"""The mechanisms are platform-agnostic: orderings hold on machines the
paper never ran (CXL capacity tier, A100-class accelerator)."""

import pytest

from repro.harness.runner import run_policy
from repro.mem.platforms import CXL_HM, GPU_A100_HM


class TestCXL:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for policy in ("slow-only", "fast-only", "ial", "sentinel"):
            fraction = None if policy in ("slow-only", "fast-only") else 0.2
            out[policy] = run_policy(
                policy,
                model="dcgan",
                batch_size=128,
                platform=CXL_HM,
                fast_fraction=fraction,
            )
        return out

    def test_ordering_carries_over(self, results):
        assert results["sentinel"].step_time <= results["ial"].step_time
        assert results["fast-only"].step_time <= results["sentinel"].step_time * 1.01
        assert results["sentinel"].step_time < results["slow-only"].step_time

    def test_sentinel_near_ceiling(self, results):
        gap = results["sentinel"].step_time / results["fast-only"].step_time
        assert gap < 1.3


class TestA100:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        # Batch sized so peak exceeds the 40 GiB device (~57 GiB).
        for policy in ("unified-memory", "capuchin", "sentinel-gpu"):
            out[policy] = run_policy(
                policy, model="resnet200", batch_size=128, platform=GPU_A100_HM
            )
        return out

    def test_sentinel_leads_on_bigger_device(self, results):
        sentinel = results["sentinel-gpu"].step_time
        assert sentinel < results["unified-memory"].step_time
        assert sentinel < results["capuchin"].step_time * 1.3

    def test_migration_happens(self, results):
        assert results["sentinel-gpu"].migrated_bytes > 0
