"""Differential check: stats counters vs quantities re-derived from the trace.

The simulator double-books everything interesting — once in
:class:`~repro.sim.stats.StatsRegistry` counters (and component-level
attributes), once as structured events.  The two are written by the same
code paths but through different machinery; if they ever disagree, either
the counters or the trace is lying.  These tests re-derive every counter
from the trace with :class:`~repro.obs.TraceQuery` and demand equality.
"""

import pytest

from repro.chaos import ChaosConfig, FaultInjector
from repro.core import SentinelConfig
from repro.core.runtime import SentinelPolicy
from repro.dnn.executor import Executor
from repro.mem.platforms import OPTANE_HM
from repro.mem.machine import Machine
from repro.models.zoo import build_model
from repro.obs import EventTracer, TraceQuery


def traced_machine_run(fault_rate=0.0, seed=7, steps=12):
    tracer = EventTracer()
    graph = build_model("dcgan", batch_size=8)
    injector = (
        FaultInjector(ChaosConfig.uniform(fault_rate, seed=seed))
        if fault_rate > 0.0
        else None
    )
    machine = Machine.for_platform(
        OPTANE_HM,
        fast_capacity=int(graph.peak_memory_bytes() * 0.25),
        injector=injector,
        tracer=tracer,
    )
    policy = SentinelPolicy(SentinelConfig(warmup_steps=2))
    Executor(graph, machine, policy).run_steps(steps)
    return TraceQuery(tracer.events), machine, injector, policy


@pytest.fixture(scope="module")
def chaotic():
    return traced_machine_run(fault_rate=0.25)


@pytest.fixture(scope="module")
def clean():
    return traced_machine_run()


class TestMigrationCounters:
    def test_promoted_bytes(self, chaotic):
        query, machine, _, _ = chaotic
        assert query.filter(cat="migration", name="promote").sum_arg(
            "nbytes"
        ) == machine.stats.counter("migration.promoted_bytes").value

    def test_demoted_bytes(self, chaotic):
        query, machine, _, _ = chaotic
        assert query.filter(cat="migration", name="demote").sum_arg(
            "nbytes"
        ) == machine.stats.counter("migration.demoted_bytes").value

    def test_aborted_bytes(self, chaotic):
        query, machine, _, _ = chaotic
        assert query.filter(cat="chaos", name="abort").sum_arg(
            "nbytes"
        ) == machine.stats.counter("migration.aborted_bytes").value

    def test_busy_fallbacks(self, chaotic):
        query, machine, _, _ = chaotic
        assert (
            query.filter(cat="migration", name="busy-fallback").count()
            == machine.stats.counter("migration.busy_fallbacks").value
        )


class TestChannelCounters:
    @pytest.mark.parametrize("channel_attr", ["promote", "demote", "demand"])
    def test_bytes_moved_per_channel(self, chaotic, channel_attr):
        query, machine, _, _ = chaotic
        channel = getattr(machine, f"{channel_attr}_channel")
        traced = query.filter(cat="channel", track=channel.name).sum_arg("nbytes")
        assert traced == channel.bytes_moved

    def test_busy_time_per_channel(self, chaotic):
        query, machine, _, _ = chaotic
        for channel in (
            machine.promote_channel,
            machine.demote_channel,
            machine.demand_channel,
        ):
            traced = query.total_span_time(cat="channel", track=channel.name)
            assert traced == pytest.approx(channel.busy_time, rel=1e-12)

    def test_aborted_transfers_per_channel(self, chaotic):
        query, machine, _, _ = chaotic
        for channel in (
            machine.promote_channel,
            machine.demote_channel,
            machine.demand_channel,
        ):
            traced = query.filter(
                cat="channel",
                track=channel.name,
                predicate=lambda e: e.args.get("aborted"),
            ).count()
            assert traced == channel.aborted_transfers


class TestFaultCounters:
    def test_faults_taken(self, chaotic):
        query, machine, _, _ = chaotic
        traced = query.filter(cat="fault", name="protection-fault").sum_arg(
            "faults"
        )
        assert traced == machine.fault_handler.faults_taken

    def test_faults_dropped(self, chaotic):
        query, machine, _, _ = chaotic
        traced = query.filter(cat="fault", name="protection-fault").sum_arg(
            "dropped"
        )
        assert traced == machine.fault_handler.faults_dropped

    def test_fault_overhead(self, chaotic):
        query, machine, _, _ = chaotic
        traced = query.filter(cat="fault", name="protection-fault").sum_arg(
            "cost"
        )
        assert traced == pytest.approx(machine.fault_handler.overhead, rel=1e-9)


class TestInjectorCounters:
    def test_every_injected_count_matches_its_instants(self, chaotic):
        query, _, injector, _ = chaotic
        assert injector is not None and injector.counts, "chaos never fired"
        for key, count in injector.counts.items():
            name = key.partition("chaos.")[2] or key
            traced = query.filter(cat="chaos", name=name).sum_arg("amount")
            assert traced == count, f"{key}: trace={traced} counter={count}"


class TestPolicyCounters:
    def test_case3_occurrences(self, clean):
        query, _, _, policy = clean
        traced = query.filter(cat="prefetch", name="case3").count()
        assert traced == policy.case3_occurrences

    def test_case2_occurrences(self, clean):
        query, _, _, policy = clean
        traced = query.filter(
            cat="prefetch",
            name="prefetch",
            predicate=lambda e: e.args.get("case2"),
        ).count()
        assert traced == policy.case2_occurrences

    def test_clean_run_emits_no_chaos_events(self, clean):
        query, _, injector, _ = clean
        assert injector is None
        assert query.filter(cat="chaos").count() == 0


def traced_pressure_run(steps=12):
    from repro.mem.pressure import PressureConfig

    tracer = EventTracer()
    graph = build_model("dcgan", batch_size=8)
    machine = Machine.for_platform(
        OPTANE_HM,
        fast_capacity=int(graph.peak_memory_bytes() * 0.08),
        tracer=tracer,
        pressure=PressureConfig.watermarks(0.6, 0.8, reserve_frames=16),
    )
    policy = SentinelPolicy(SentinelConfig(warmup_steps=2))
    Executor(graph, machine, policy).run_steps(steps)
    return TraceQuery(tracer.events), machine


@pytest.fixture(scope="module")
def pressured():
    return traced_pressure_run()


class TestPressureCounters:
    """Every pressure.* counter must be re-derivable from the trace."""

    def test_governor_was_actually_active(self, pressured):
        query, machine = pressured
        assert query.filter(cat="pressure").count() > 0, (
            "the fixture no longer exercises the governor; "
            "tighten its capacity or watermarks"
        )

    @pytest.mark.parametrize(
        "counter,event",
        [
            ("pressure.spills", "spill"),
            ("pressure.refused_promotions", "refused-promotion"),
            ("pressure.reclaims", "reclaim"),
            ("pressure.low_crossings", "watermark-low-enter"),
            ("pressure.high_crossings", "watermark-high-enter"),
        ],
    )
    def test_event_counts(self, pressured, counter, event):
        query, machine = pressured
        traced = query.filter(cat="pressure", name=event).count()
        assert traced == machine.stats.counter(counter).value

    @pytest.mark.parametrize(
        "counter,event",
        [
            ("pressure.spilled_bytes", "spill"),
            ("pressure.refused_bytes", "refused-promotion"),
            ("pressure.reclaimed_bytes", "reclaim"),
        ],
    )
    def test_byte_sums(self, pressured, counter, event):
        query, machine = pressured
        traced = query.filter(cat="pressure", name=event).sum_arg("nbytes")
        assert traced == machine.stats.counter(counter).value

    def test_reclaimed_bytes_flow_through_demote_channel(self, pressured):
        query, machine = pressured
        reclaim_tagged = query.filter(
            cat="migration",
            name="demote",
            predicate=lambda e: e.args.get("tag") == "pressure-reclaim",
        ).sum_arg("nbytes")
        assert (
            reclaim_tagged
            == machine.stats.counter("pressure.reclaimed_bytes").value
        )


class TestCompactionCounters:
    def make_fragmented_arena(self):
        from repro.dnn.arena import ArenaAllocator
        from repro.dnn.tensor import Tensor, TensorKind
        from repro.mem.devices import DeviceKind

        tracer = EventTracer()
        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=1 << 24, tracer=tracer
        )
        arena = ArenaAllocator(machine, lambda tensor, now: DeviceKind.SLOW)
        slab = ArenaAllocator.SLAB_PAGES * machine.page_size
        tensors = []
        for tid in range(6):
            tensor = Tensor(
                tid=tid, name=f"t{tid}", nbytes=slab // 2, kind=TensorKind.TEMP
            )
            tensor.alloc_layer = tensor.free_layer = 0
            arena.alloc(tensor, now=0.0)
            tensors.append(tensor)
        for tensor in tensors[1::2]:  # every second tenant leaves
            arena.free(tensor, now=0.0)
        return machine, arena, tracer

    def test_compaction_span_args_match_counters(self):
        machine, arena, tracer = self.make_fragmented_arena()
        arena.compact(now=0.0, max_moves=8)
        arena.compact(now=1.0, max_moves=8)  # second pass may be a no-op
        query = TraceQuery(tracer.events)
        spans = query.filter(cat="pressure", name="compaction")
        stats = machine.stats
        assert (
            spans.count() == stats.counter("pressure.compaction_passes").value
        )
        for arg, counter in (
            ("moves", "pressure.compaction_moves"),
            ("moved_bytes", "pressure.compaction_bytes"),
            ("freed_bytes", "pressure.compaction_freed_bytes"),
        ):
            assert spans.sum_arg(arg) == stats.counter(counter).value

    def test_relocations_match_engine_counter(self):
        machine, arena, tracer = self.make_fragmented_arena()
        report = arena.compact(now=0.0, max_moves=8)
        assert report.moves > 0, "fixture produced nothing to compact"
        assert (
            machine.stats.counter("migration.relocated_bytes").value
            == report.moved_bytes
        )
