"""Temporal invariants of event traces, on random workloads.

The tracer observes the substrate passively; these properties check that
what it records is *physically coherent* — FIFO channels never serve two
transfers at once, every byte a migration claims to move really crossed a
channel, profiling faults only happen inside training steps, and aborted
copies leave the books balanced.  Reusing the fuzz generator means the
invariants hold on graphs nothing was tuned for.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import ChaosConfig, FaultInjector, InvariantAuditor
from repro.core import SentinelConfig
from repro.core.runtime import SentinelPolicy
from repro.dnn.executor import Executor
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models.synthetic import random_graph
from repro.obs import EventTracer, TraceQuery

CHANNEL_TRACKS = ("promote", "demote", "demand-promote")

INVARIANT_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def traced_sentinel_run(seed, fault_rate=0.0, steps=5):
    """Run Sentinel on a random graph with tracing; return (query, machine)."""
    graph = random_graph(seed, max_layers=10, max_tensor_bytes=1 << 22)
    capacity = max(
        OPTANE_HM.page_size * 128, int(graph.peak_memory_bytes() * 0.3)
    )
    tracer = EventTracer()
    injector = (
        FaultInjector(ChaosConfig.uniform(fault_rate, seed=seed))
        if fault_rate > 0.0
        else None
    )
    machine = Machine.for_platform(
        OPTANE_HM, fast_capacity=capacity, injector=injector, tracer=tracer
    )
    policy = SentinelPolicy(SentinelConfig(warmup_steps=1))
    executor = Executor(
        graph, machine, policy, observers=[InvariantAuditor(machine)]
    )
    executor.run_steps(steps)
    machine.migration.sync(float("inf"))
    return TraceQuery(tracer.events), machine


class TestChannelInvariants:
    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_fifo_channels_never_overlap(self, seed):
        query, _ = traced_sentinel_run(seed)
        for track in CHANNEL_TRACKS:
            assert query.overlap_time(track, cat="channel") == 0.0

    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_fifo_channels_never_overlap_under_chaos(self, seed):
        query, _ = traced_sentinel_run(seed, fault_rate=0.2)
        for track in CHANNEL_TRACKS:
            assert query.overlap_time(track, cat="channel") == 0.0


class TestMigrationBytesBalance:
    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_migration_bytes_equal_delivered_channel_bytes(self, seed):
        query, _ = traced_sentinel_run(seed, fault_rate=0.2)
        delivered = query.filter(
            cat="channel", predicate=lambda e: not e.args.get("aborted")
        )
        promote_bytes = sum(
            e.args["nbytes"]
            for e in delivered
            if e.track in ("promote", "demand-promote")
        )
        demote_bytes = sum(
            e.args["nbytes"] for e in delivered if e.track == "demote"
        )
        assert query.filter(cat="migration", name="promote").sum_arg(
            "nbytes"
        ) == promote_bytes
        assert query.filter(cat="migration", name="demote").sum_arg(
            "nbytes"
        ) == demote_bytes

    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_aborted_channel_bytes_match_abort_spans(self, seed):
        query, _ = traced_sentinel_run(seed, fault_rate=0.3)
        wrecked = query.filter(
            cat="channel", predicate=lambda e: e.args.get("aborted")
        ).sum_arg("nbytes")
        assert query.filter(cat="chaos", name="abort").sum_arg("nbytes") == wrecked


class TestFaultPlacement:
    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_every_fault_lands_inside_a_step_span(self, seed):
        query, _ = traced_sentinel_run(seed)
        steps = query.spans(cat="step", name="step")
        assert steps, "run emitted no step spans"
        faults = query.filter(cat="fault")
        # Sentinel profiles at least one step, so faults must exist...
        assert faults.count() > 0
        # ...and every one of them belongs to some step's interval.
        for event in faults:
            assert any(span.contains(event.ts) for span in steps), (
                f"fault at t={event.ts} outside every step span"
            )


class TestChaosRollback:
    @given(seed=st.integers(min_value=0, max_value=10**4))
    @INVARIANT_SETTINGS
    def test_abort_heavy_runs_keep_capacity_balanced(self, seed):
        # The InvariantAuditor inside traced_sentinel_run raises on any
        # accounting imbalance; here we additionally pin the final state.
        query, machine = traced_sentinel_run(seed, fault_rate=0.4)
        from repro.mem.devices import DeviceKind

        assert machine.page_table.bytes_on(DeviceKind.FAST) == machine.fast.used
        assert machine.page_table.bytes_on(DeviceKind.SLOW) == machine.slow.used
        # Abort spans never claim more bytes than their wrecked submissions.
        for span in query.spans(cat="chaos", name="abort"):
            assert span.args["nbytes"] >= 0
            assert span.duration >= 0.0
