"""Differential checks for the tensor-insight layer.

Two contracts, both across the model zoo:

* **Zero overhead when disabled** — attaching an insight collector must
  not perturb the simulation by a single byte: the golden trace digest of
  a run with a collector equals the digest without one, on the scalar and
  the vectorized accounting paths alike.  Insight *observes* prices, it
  never sets them.
* **Internal consistency when enabled** — residency segments tile each
  tensor's lifetime exactly, the occupancy identity
  ``hot + warm + cold + other == occupancy`` holds at every sample, byte
  attribution balances against migration totals, and every ping-pong
  flagged lineage entry reconciles with a migration-category trace event
  at the same transfer-start timestamp.
"""

import pytest

from repro import accel
from repro.harness.runner import run_policy
from repro.obs import (
    EventTracer,
    InsightCollector,
    TraceQuery,
    canonical_digest,
    validate_insight,
)

#: (policy, model, fast_fraction) spanning policy families and the zoo.
CASES = [
    ("sentinel", "dcgan", 0.3),
    ("sentinel", "lstm", 0.5),
    ("ial", "mobilenet", 0.4),
    ("autotm", "lstm", 0.4),
]


def traced_run(policy, model, fraction, insight, scalar=False):
    tracer = EventTracer()
    collector = InsightCollector() if insight else None
    with accel.scalar_path(scalar):
        metrics = run_policy(
            policy,
            model=model,
            fast_fraction=fraction,
            tracer=tracer,
            insight=collector,
        )
    return metrics, tracer, collector


@pytest.fixture(scope="module")
def collected():
    """One insight-enabled traced run per case."""
    out = {}
    for policy, model, fraction in CASES:
        out[(policy, model, fraction)] = traced_run(
            policy, model, fraction, insight=True
        )
    return out


class TestDisabledByteIdentity:
    @pytest.mark.parametrize("policy,model,fraction", CASES)
    def test_trace_digest_unchanged_by_collector(
        self, collected, policy, model, fraction
    ):
        bare_metrics, bare_tracer, _ = traced_run(
            policy, model, fraction, insight=False
        )
        metrics, tracer, _ = collected[(policy, model, fraction)]
        assert canonical_digest(tracer.events) == canonical_digest(
            bare_tracer.events
        )
        # Metrics agree too, modulo the insight.* summary extras.
        stripped = {
            key: value
            for key, value in metrics.extras.items()
            if not key.startswith("insight.")
        }
        assert stripped == bare_metrics.extras
        assert metrics.step_time == bare_metrics.step_time

    def test_scalar_path_digest_unchanged_by_collector(self):
        policy, model, fraction = CASES[0]
        _, bare, _ = traced_run(policy, model, fraction, insight=False, scalar=True)
        _, with_insight, _ = traced_run(
            policy, model, fraction, insight=True, scalar=True
        )
        assert canonical_digest(with_insight.events) == canonical_digest(
            bare.events
        )

    def test_scalar_and_vectorized_agree_under_insight(self):
        policy, model, fraction = CASES[0]
        _, _, scalar_collector = traced_run(
            policy, model, fraction, insight=True, scalar=True
        )
        _, _, vector_collector = traced_run(
            policy, model, fraction, insight=True, scalar=False
        )
        from repro.obs import insight_json

        assert insight_json(scalar_collector.report()) == insight_json(
            vector_collector.report()
        )


class TestEnabledConsistency:
    @pytest.mark.parametrize("policy,model,fraction", CASES)
    def test_artifact_validates(self, collected, policy, model, fraction):
        _, _, collector = collected[(policy, model, fraction)]
        report = collector.report()
        assert validate_insight(report) == len(report["tensors"])

    @pytest.mark.parametrize("policy,model,fraction", CASES)
    def test_residency_tiles_lifetime(self, collected, policy, model, fraction):
        _, _, collector = collected[(policy, model, fraction)]
        report = collector.report()
        for row in report["tensors"]:
            segments = row["residency"]
            assert segments[0][0] == row["alloc"]
            end = row["free"] if row["free"] is not None else report["finalized_at"]
            assert segments[-1][1] == end
            tiled = sum(t1 - t0 for t0, t1, _ in segments)
            assert tiled == pytest.approx(end - row["alloc"], abs=1e-12)

    @pytest.mark.parametrize("policy,model,fraction", CASES)
    def test_occupancy_identity_at_every_sample(
        self, collected, policy, model, fraction
    ):
        _, _, collector = collected[(policy, model, fraction)]
        report = collector.report()
        assert report["occupancy"], "no occupancy samples collected"
        for _, hot, warm, cold, other, occupancy in report["occupancy"]:
            assert hot >= 0 and warm >= 0 and cold >= 0
            assert hot + warm + cold + other == pytest.approx(
                occupancy, abs=1e-6
            )

    @pytest.mark.parametrize("policy,model,fraction", CASES)
    def test_attribution_balances_migration_totals(
        self, collected, policy, model, fraction
    ):
        _, _, collector = collected[(policy, model, fraction)]
        report = collector.report()
        totals = report["totals"]
        for kind in ("promote", "demote"):
            key = f"{kind}_bytes"
            if key not in totals:
                continue
            per_tensor = sum(
                entry["bytes"]
                for row in report["tensors"]
                for entry in row["lineage"]
                if entry["kind"] == kind
            )
            assert per_tensor == pytest.approx(totals[f"{kind}_attributed"])
            assert totals[f"{kind}_attributed"] + totals[
                f"{kind}_unattributed"
            ] == pytest.approx(totals[key])


class TestPingPongReconciliation:
    @pytest.mark.parametrize("policy,model,fraction", CASES)
    def test_lineage_reconciles_with_migration_trace(
        self, collected, policy, model, fraction
    ):
        _, tracer, collector = collected[(policy, model, fraction)]
        report = collector.report()
        query = TraceQuery(tracer.events)
        starts = {
            kind: {
                event.ts
                for event in query.filter(cat="migration", name=kind)
            }
            for kind in ("promote", "demote")
        }
        for row in report["tensors"]:
            for entry in row["lineage"]:
                if entry["kind"] not in starts:
                    continue  # discard/materialize have no X-span
                assert entry["start"] in starts[entry["kind"]], (
                    f"{row['name']}#{row['tid']}: lineage {entry['kind']} at "
                    f"start={entry['start']} has no matching trace event"
                )

    def test_some_case_actually_pingpongs(self, collected):
        # Guard against the detector silently never firing: at least one
        # zoo case must exhibit promote→demote→promote churn.
        total = sum(
            row["pingpong"]
            for _, _, collector in collected.values()
            for row in collector.report()["tensors"]
        )
        assert total > 0

    def test_flagged_count_matches_summary(self, collected):
        for _, _, collector in collected.values():
            report = collector.report()
            summary = collector.summary()
            assert summary["insight.pingpong_events"] == sum(
                row["pingpong"] for row in report["tensors"]
            )
