"""RAS end-to-end: byte-identity when off, determinism and survival when on.

Three contracts from the RAS design:

* **Off means off** — ``ras=None`` and a disabled config produce runs
  byte-identical to each other and to the checked-in pre-RAS golden
  trace digest, on both the scalar and the vectorized path.
* **Deterministic storms** — a fixed-seed UE storm replays exactly:
  same injected errors, same retired frames, same recovery costs, same
  trace bytes.
* **Survival and blast radius** — every zoo model survives UEs on live
  activations via rematerialization (recovery time visible in the
  critical-path decomposition), and in the serving layer an exhausted
  recovery ladder kills only the owning job while the machine stays up.
"""

import dataclasses

import pytest

from repro import accel
from repro.chaos import InvariantAuditor
from repro.harness.runner import run_policy
from repro.mem.ras import RASConfig
from repro.obs import EventTracer, canonical_digest, to_jsonl
from repro.obs.critpath import attribute

ZOO = (
    "resnet32",
    "resnet200",
    "bert-base",
    "bert-large",
    "lstm",
    "mobilenet",
    "gpt-small",
    "gpt-medium",
    "dcgan",
)

#: A storm config heavy enough that every zoo model takes UEs on live
#: activations, with scrubbing and remat recovery on.
STORM = RASConfig(
    seed=1337,
    ue_rate=1e-9,
    ce_rate=1e-8,
    scrub_bandwidth=256 * 1024**2,
    recovery="remat",
)


def as_dict(metrics):
    return dataclasses.asdict(metrics)


def traced_run(ras, **kwargs):
    tracer = EventTracer()
    metrics = run_policy(
        "sentinel", model="dcgan", fast_fraction=0.2, ras=ras,
        tracer=tracer, **kwargs
    )
    return metrics, tracer


class TestDisabledByteIdentity:
    def test_disabled_config_matches_no_config(self):
        base, base_trace = traced_run(ras=None)
        off, off_trace = traced_run(ras=RASConfig())
        assert as_dict(base) == as_dict(off)
        assert to_jsonl(base_trace.events) == to_jsonl(off_trace.events)

    def test_disabled_config_matches_checked_in_golden(self, golden_digest):
        # The pre-RAS golden digest: a disabled config must reproduce it
        # bit-for-bit — the whole subsystem disappears behind its gates.
        _, tracer = traced_run(ras=RASConfig())
        assert canonical_digest(tracer.events) == golden_digest

    def test_enabled_run_is_scalar_vectorized_identical(self):
        with accel.scalar_path(True):
            scalar = run_policy(
                "sentinel", model="dcgan", fast_fraction=0.2, ras=STORM
            )
        with accel.scalar_path(False):
            vectorized = run_policy(
                "sentinel", model="dcgan", fast_fraction=0.2, ras=STORM
            )
        assert as_dict(scalar) == as_dict(vectorized)


@pytest.fixture()
def golden_digest():
    from pathlib import Path

    golden = (
        Path(__file__).parent.parent
        / "golden"
        / "dcgan_sentinel_trace.sha256"
    )
    return golden.read_text().strip()


class TestStormDeterminism:
    def test_fixed_seed_storm_replays_byte_identically(self):
        first, first_trace = traced_run(ras=STORM)
        second, second_trace = traced_run(ras=STORM)
        assert first.extras["ras.ue_detected"] > 0
        assert as_dict(first) == as_dict(second)
        assert to_jsonl(first_trace.events) == to_jsonl(second_trace.events)

    def test_reseeding_changes_the_storm(self):
        first, _ = traced_run(ras=STORM)
        second, _ = traced_run(ras=STORM.reseeded(7))
        assert (
            first.extras["ras.errors_injected"]
            != second.extras["ras.errors_injected"]
            or first.extras["ras.ue_detected"]
            != second.extras["ras.ue_detected"]
            or first.step_time != second.step_time
        )


class TestZooSurvival:
    @pytest.mark.parametrize("model", ZOO)
    def test_every_model_survives_ue_storm_via_remat(self, model):
        metrics = run_policy(
            "sentinel", model=model, fast_fraction=0.2,
            ras=STORM, audit=True,
        )
        assert metrics.extras["ras.ue_detected"] >= 1
        assert metrics.extras["ras.remat_events"] >= 1
        assert metrics.extras["ras.retired_frames"] >= 1
        assert metrics.step_time > 0.0

    def test_recovery_time_lands_in_critpath_decomposition(self):
        metrics, tracer = traced_run(ras=STORM)
        assert metrics.extras["ras.remat_events"] >= 1
        attribution = attribute(tracer.events, dropped=tracer.dropped)
        totals = attribution.totals()
        assert totals["ras_recovery"] > 0.0
        assert totals["ras_recovery"] == pytest.approx(
            metrics.extras["ras.remat_time"]
            + metrics.extras["ras.refetch_time"]
        )
        # The decomposition stays exact: exclusive components plus idle
        # cover each step span with nothing double-counted.
        for step in attribution:
            comp = step.components()
            assert sum(comp.values()) == pytest.approx(step.duration)

    def test_retirement_shrinks_capacity_for_good(self):
        ras = STORM
        tracer = EventTracer()
        from repro.chaos import ChaosConfig  # noqa: F401 (idiom anchor)
        from repro.mem.machine import Machine
        from repro.mem.platforms import OPTANE_HM
        from repro.core.runtime import SentinelConfig, SentinelPolicy
        from repro.dnn.executor import Executor
        from repro.models.zoo import build_model

        graph = build_model("dcgan", batch_size=8)
        machine = Machine.for_platform(
            OPTANE_HM,
            fast_capacity=int(graph.peak_memory_bytes() * 0.2),
            tracer=tracer,
            ras=ras,
        )
        policy = SentinelPolicy(SentinelConfig(warmup_steps=2))
        Executor(graph, machine, policy).run_steps(8)
        retired = machine.ras.retired_frames
        assert retired >= 1
        withheld = sum(
            len(vpns) for vpns in machine.ras.badblocks.values()
        )
        assert withheld == retired
        assert (
            machine.fast.reserved + machine.slow.reserved
            == retired * machine.page_size
        )


class TestRasTraceCategory:
    def test_ras_events_form_their_own_category(self):
        from repro.obs.query import TraceQuery

        _, tracer = traced_run(ras=STORM)
        query = TraceQuery(tracer.events)
        assert "ras" in query.categories()
        names = {e.name for e in query.filter(cat="ras")}
        assert "machine-check" in names
        assert "page-retired" in names
