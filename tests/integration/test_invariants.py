"""Cross-policy machine invariants, property-tested.

Whatever a policy decides, the simulated machine must stay physical:
capacity never oversubscribed, every byte accounted, migrations conserved,
clocks monotone.  These run each policy on small workloads under hypothesis
control and check the substrate afterwards.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.registry import CPU_ONLY, GPU_ONLY, POLICIES, make_policy
from repro.core.runtime import SentinelConfig
from repro.dnn.executor import Executor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM
from repro.models import build_model

CPU_POLICIES = sorted(name for name in POLICIES if name not in GPU_ONLY)
GPU_POLICIES = sorted(
    name
    for name in POLICIES
    # vDNN rejects some models; the bounds cannot fit an oversubscribed
    # workload by construction (that OOM is their own test's subject).
    if name not in CPU_ONLY and name not in ("vdnn", "fast-only", "slow-only")
)


def run_steps(policy_name, platform, fast_capacity, steps=3, model="dcgan", batch=32):
    graph = build_model(model, batch_size=batch)
    machine = Machine.for_platform(platform, fast_capacity=fast_capacity)
    policy = make_policy(policy_name, sentinel_config=SentinelConfig(warmup_steps=1))
    executor = Executor(graph, machine, policy)
    results = executor.run_steps(steps)
    return graph, machine, results


def assert_machine_invariants(machine):
    machine.migration.sync(float("inf"))
    # Capacity is never exceeded and never negative.
    assert 0 <= machine.fast.used <= machine.fast.capacity
    assert 0 <= machine.slow.used <= machine.slow.capacity
    # Every mapped run's committed bytes are charged to exactly one device.
    page = machine.page_size
    mapped_fast = machine.page_table.bytes_on(DeviceKind.FAST)
    mapped_slow = machine.page_table.bytes_on(DeviceKind.SLOW)
    assert mapped_fast == machine.fast.used
    assert mapped_slow == machine.slow.used


class TestCPUInvariants:
    @pytest.mark.parametrize("policy", CPU_POLICIES)
    def test_capacity_and_accounting(self, policy):
        fraction = None if policy in ("slow-only", "fast-only") else 0.25
        graph = build_model("dcgan", batch_size=32)
        capacity = (
            None if fraction is None else int(graph.peak_memory_bytes() * fraction)
        )
        _, machine, results = run_steps(policy, OPTANE_HM, capacity)
        assert_machine_invariants(machine)
        for result in results:
            assert result.duration > 0
            assert result.compute_time >= 0
            assert result.stall_time >= 0
            assert result.end_time >= result.start_time

    @pytest.mark.parametrize("policy", CPU_POLICIES)
    def test_time_never_flows_backwards(self, policy):
        fraction = None if policy in ("slow-only", "fast-only") else 0.25
        graph = build_model("dcgan", batch_size=32)
        capacity = (
            None if fraction is None else int(graph.peak_memory_bytes() * fraction)
        )
        _, _, results = run_steps(policy, OPTANE_HM, capacity)
        for earlier, later in zip(results, results[1:]):
            assert later.start_time >= earlier.end_time - 1e-9


class TestGPUInvariants:
    @pytest.mark.parametrize("policy", GPU_POLICIES)
    def test_capacity_and_accounting(self, policy):
        _, machine, results = run_steps(
            policy, GPU_HM, fast_capacity=2 * 1024**3, batch=256
        )
        assert_machine_invariants(machine)

    @pytest.mark.parametrize("policy", GPU_POLICIES)
    def test_no_resident_violations_at_step_end(self, policy):
        """All in-flight migrations resolve and capacity stays physical."""
        _, machine, _ = run_steps(policy, GPU_HM, fast_capacity=2 * 1024**3, batch=256)
        machine.migration.sync(float("inf"))
        assert machine.migration.in_flight_bytes(float("inf")) == 0


class TestSentinelPropertySweep:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        fraction=st.floats(min_value=0.15, max_value=0.9),
        batch=st.sampled_from([16, 32, 64]),
    )
    def test_sentinel_invariants_across_operating_points(self, fraction, batch):
        graph = build_model("dcgan", batch_size=batch)
        capacity = max(
            OPTANE_HM.page_size * 256, int(graph.peak_memory_bytes() * fraction)
        )
        _, machine, results = run_steps(
            "sentinel", OPTANE_HM, capacity, steps=4, batch=batch
        )
        assert_machine_invariants(machine)
        # Steady state: the last two managed steps take the same time.
        assert results[-1].duration == pytest.approx(
            results[-2].duration, rel=0.35
        )
