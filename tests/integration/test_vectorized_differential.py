"""Differential equivalence: the vectorized hot path vs the scalar reference.

The vectorized accounting paths (``repro.accel``) promise *byte-identical*
results to the original scalar loops — not "close", identical: every float
is produced by the same operation on the same operands in the same order.
These tests run the same workload once per path and compare everything we
can serialize: steady-state metrics (including the extras counters), the
full per-step event trace, and the checked-in golden digest.

If one of these fails, the vectorized twin has drifted from the scalar
reference — fix the twin, never the tolerance (there is none).
"""

import dataclasses

import pytest

from repro import accel
from repro.chaos import ChaosConfig
from repro.harness.runner import run_policy
from repro.mem.pressure import PressureConfig
from repro.obs import EventTracer, canonical_digest, to_jsonl

#: (policy, model, fast_fraction) cases spanning the model zoo and the
#: policy families whose hot paths were vectorized.  fast-only is absent:
#: it needs full-capacity headroom at these fractions (pre-existing, path
#: independent).
DIFFERENTIAL_CASES = [
    ("sentinel", "dcgan", 0.3),
    ("sentinel", "lstm", 0.5),
    ("sentinel", "mobilenet", 0.4),
    ("slow-only", "dcgan", 0.3),
    ("ial", "resnet32", 0.4),
    ("first-touch", "lstm", 0.3),
    ("memory-mode", "dcgan", 0.5),
    ("vdnn", "dcgan", 0.4),
    ("autotm", "lstm", 0.4),
    ("capuchin", "dcgan", 0.5),
]


def run_both_paths(**kwargs):
    """Run the same workload on each path; returns (scalar, vectorized)."""
    with accel.scalar_path(True):
        scalar = run_policy(**kwargs)
    with accel.scalar_path(False):
        vectorized = run_policy(**kwargs)
    return scalar, vectorized


def as_dict(metrics):
    return dataclasses.asdict(metrics)


class TestMetricsEquivalence:
    @pytest.mark.parametrize("policy,model,fraction", DIFFERENTIAL_CASES)
    def test_metrics_byte_identical(self, policy, model, fraction):
        scalar, vectorized = run_both_paths(
            policy_name=policy, model=model, fast_fraction=fraction
        )
        assert as_dict(scalar) == as_dict(vectorized)

    def test_chaos_fault_sequence_identical(self):
        chaos = ChaosConfig.uniform(0.2, seed=99)
        scalar, vectorized = run_both_paths(
            policy_name="sentinel", model="dcgan", fast_fraction=0.3, chaos=chaos
        )
        # The extras carry the injected-fault counters: identical extras
        # mean the fault sequence (not just its aggregate cost) matched.
        assert as_dict(scalar) == as_dict(vectorized)

    def test_pressure_governor_identical(self):
        pressure = PressureConfig()
        scalar, vectorized = run_both_paths(
            policy_name="sentinel", model="dcgan", fast_fraction=0.3,
            pressure=pressure,
        )
        assert as_dict(scalar) == as_dict(vectorized)


class TestTraceEquivalence:
    def traced(self, scalar, chaos=None):
        tracer = EventTracer()
        with accel.scalar_path(scalar):
            run_policy(
                "sentinel", model="dcgan", fast_fraction=0.2,
                chaos=chaos, tracer=tracer,
            )
        return tracer.events

    def test_per_step_event_stream_identical(self):
        # to_jsonl serializes every event of every step: equality here is
        # per-step, per-event byte identity, not just end-of-run totals.
        assert to_jsonl(self.traced(scalar=True)) == to_jsonl(
            self.traced(scalar=False)
        )

    def test_chaos_trace_identical(self):
        chaos = ChaosConfig.uniform(0.2, seed=99)
        assert to_jsonl(self.traced(scalar=True, chaos=chaos)) == to_jsonl(
            self.traced(scalar=False, chaos=chaos)
        )

    def test_both_paths_match_checked_in_golden(self, golden_digest):
        # Each path independently reproduces the committed golden digest —
        # the strongest cross-version anchor we have.
        assert canonical_digest(self.traced(scalar=True)) == golden_digest
        assert canonical_digest(self.traced(scalar=False)) == golden_digest


@pytest.fixture(scope="module")
def golden_digest():
    from pathlib import Path

    golden = (
        Path(__file__).resolve().parent.parent
        / "golden"
        / "dcgan_sentinel_trace.sha256"
    )
    return golden.read_text().strip()


class TestSwitch:
    def test_context_manager_restores(self):
        before = accel.scalar_enabled()
        with accel.scalar_path(True):
            assert accel.scalar_enabled()
            with accel.scalar_path(False):
                assert accel.vectorized_enabled()
            assert accel.scalar_enabled()
        assert accel.scalar_enabled() == before

    def test_default_is_vectorized(self):
        # Unless REPRO_SCALAR selected otherwise, the fast path is on.
        import os

        if os.environ.get("REPRO_SCALAR", "").strip() in ("", "0", "false"):
            assert accel.vectorized_enabled()
