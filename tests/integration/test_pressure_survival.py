"""Survival under severe capacity pressure: every model must complete.

The paper's regime is a working set many times fast memory; the governor's
contract is that shrinking the fast tier degrades throughput, never
correctness.  Every zoo model runs a sentinel step loop at 5% fast
fraction with the governor and the invariant auditor armed — any unhandled
exception or accounting imbalance fails the suite.
"""

import pytest

from repro.chaos import ChaosConfig
from repro.harness.experiments import pressure_survival
from repro.harness.runner import run_policy
from repro.mem.pressure import PressureConfig
from repro.models.zoo import MODELS

GOVERNOR = PressureConfig.watermarks(0.75, 0.9, reserve_frames=32)


class TestEveryModelSurvives:
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_sentinel_at_five_percent(self, model):
        metrics = run_policy(
            "sentinel",
            model=model,
            fast_fraction=0.05,
            pressure=GOVERNOR,
            audit=True,
        )
        assert metrics.step_time > 0.0

    @pytest.mark.parametrize("model", ["dcgan", "lstm"])
    def test_ial_at_ten_percent(self, model):
        metrics = run_policy(
            "ial",
            model=model,
            fast_fraction=0.1,
            pressure=GOVERNOR,
            audit=True,
        )
        assert metrics.step_time > 0.0


class TestGovernorActivityVisible:
    def test_pressure_counters_land_in_extras(self):
        metrics = run_policy(
            "sentinel", model="dcgan", fast_fraction=0.05, pressure=GOVERNOR
        )
        pressure_keys = {
            key for key in metrics.extras if key.startswith("pressure.")
        }
        assert pressure_keys, "governor ran but reported nothing"
        assert "migration.relocated_bytes" in metrics.extras
        # At 5% the governor cannot be idle: something must have spilled,
        # been refused, or been reclaimed.
        activity = sum(
            metrics.extras[key]
            for key in (
                "pressure.spills",
                "pressure.refused_promotions",
                "pressure.reclaims",
            )
            if key in metrics.extras
        )
        assert activity > 0

    def test_no_governor_no_pressure_extras(self):
        metrics = run_policy("sentinel", model="dcgan", fast_fraction=0.2)
        assert not any(k.startswith("pressure.") for k in metrics.extras)


class TestComposesWithChaos:
    def test_capacity_shrink_under_governor_survives(self):
        chaos = ChaosConfig(
            capacity_shrink_rate=0.5,
            capacity_shrink_frames=256,
            capacity_shrink_steps=2,
            seed=13,
        )
        metrics = run_policy(
            "sentinel",
            model="dcgan",
            fast_fraction=0.1,
            pressure=GOVERNOR,
            chaos=chaos,
            audit=True,
        )
        assert metrics.step_time > 0.0

    def test_shrink_episodes_are_deterministic(self):
        chaos = ChaosConfig(
            capacity_shrink_rate=0.5, capacity_shrink_frames=64, seed=13
        )

        def extras():
            return run_policy(
                "sentinel",
                model="dcgan",
                fast_fraction=0.1,
                pressure=GOVERNOR,
                chaos=chaos,
            ).extras

        assert extras() == extras()


class TestSurvivalExperiment:
    def test_trimmed_experiment_completes(self):
        result = pressure_survival(
            models=("dcgan",),
            policies=("sentinel", "ial"),
            fast_fractions=(0.1,),
            trace=True,
        )
        assert set(result["records"]) == {"sentinel/dcgan", "ial/dcgan"}
        for series in result["records"].values():
            assert len(series) == 1
            assert series[0]["step_time"] > 0.0
        assert "every point must complete" in result["text"]
        assert result["labeled"], "trace=True captured no event streams"
        for label, events in result["labeled"]:
            assert events, f"{label} recorded an empty trace"
