"""Counters, timelines, and the stats registry."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, StatsRegistry, Timeline


class TestCounter:
    def test_accumulates(self):
        counter = Counter("x")
        counter.add(2.0)
        counter.add(3.0)
        assert counter.value == 5.0

    def test_reset(self):
        counter = Counter("x")
        counter.add(1.0)
        counter.reset()
        assert counter.value == 0.0

    def test_negative_amount_rejected(self):
        counter = Counter("x")
        counter.add(3.0)
        with pytest.raises(ValueError, match="monotonic"):
            counter.add(-1.0)
        assert counter.value == 3.0  # the failed add left no trace

    def test_zero_amount_allowed(self):
        counter = Counter("x")
        counter.add(0.0)
        assert counter.value == 0.0


class TestTimeline:
    def test_rejects_nonpositive_bin(self):
        with pytest.raises(ValueError):
            Timeline(0.0)

    def test_record_bins_by_time(self):
        timeline = Timeline(1.0)
        timeline.record(0.5, 10.0)
        timeline.record(0.9, 5.0)
        timeline.record(1.1, 7.0)
        series = dict(timeline.series())
        assert series[0.0] == pytest.approx(15.0)
        assert series[1.0] == pytest.approx(7.0)

    def test_record_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Timeline(1.0).record(-0.1, 1.0)

    def test_record_span_spreads_uniformly(self):
        timeline = Timeline(1.0)
        timeline.record_span(0.5, 2.5, 20.0)
        series = dict(timeline.series())
        # 0.5s in bin 0, 1.0s in bin 1, 0.5s in bin 2 at rate 10/s.
        assert series[0.0] == pytest.approx(5.0)
        assert series[1.0] == pytest.approx(10.0)
        assert series[2.0] == pytest.approx(5.0)

    def test_record_span_zero_length_falls_back_to_point(self):
        timeline = Timeline(1.0)
        timeline.record_span(1.0, 1.0, 4.0)
        assert timeline.total() == pytest.approx(4.0)

    def test_record_span_backwards_rejected(self):
        with pytest.raises(ValueError):
            Timeline(1.0).record_span(2.0, 1.0, 4.0)

    @given(
        spans=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0, max_value=10, allow_nan=False),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            ),
            max_size=20,
        )
    )
    def test_span_conserves_amount(self, spans):
        timeline = Timeline(0.7)
        total = 0.0
        for start, length, amount in spans:
            timeline.record_span(start, start + length, amount)
            total += amount
        assert timeline.total() == pytest.approx(total, rel=1e-6, abs=1e-6)


class TestStatsRegistry:
    def test_counter_is_memoized(self):
        stats = StatsRegistry()
        assert stats.counter("a") is stats.counter("a")

    def test_timeline_bin_width_conflict_rejected(self):
        stats = StatsRegistry()
        stats.timeline("t", bin_width=0.5)
        with pytest.raises(ValueError):
            stats.timeline("t", bin_width=0.25)

    def test_counters_snapshot(self):
        stats = StatsRegistry()
        stats.counter("a").add(1.0)
        stats.counter("b").add(2.0)
        assert stats.counters() == {"a": 1.0, "b": 2.0}

    def test_reset_clears_everything(self):
        stats = StatsRegistry()
        stats.counter("a").add(1.0)
        stats.timeline("t").record(0.0, 5.0)
        stats.reset()
        assert stats.counter("a").value == 0.0
        assert stats.timeline("t").total() == 0.0


class TestDeprecationShim:
    def test_import_emits_deprecation_warning(self):
        import importlib
        import sys

        sys.modules.pop("repro.sim.stats", None)
        with pytest.warns(DeprecationWarning, match="repro.sim.stats is deprecated"):
            importlib.import_module("repro.sim.stats")

    def test_shim_reexports_match_metrics_module(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.obs.metrics import (
                Counter as NewCounter,
                MetricsRegistry,
                Timeline as NewTimeline,
            )
            from repro.sim import stats

        assert stats.Counter is NewCounter
        assert stats.Timeline is NewTimeline
        assert stats.StatsRegistry is MetricsRegistry
        assert stats.__all__ == ["Counter", "Timeline", "StatsRegistry"]

    def test_lazy_package_reexport_still_works(self):
        # repro.sim resolves the deprecated names lazily (PEP 562), so
        # importing the package alone stays warning-free while attribute
        # access keeps the historical spelling alive.
        import warnings

        import repro.sim

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.sim.Counter is Counter
            assert repro.sim.StatsRegistry is StatsRegistry
        with pytest.raises(AttributeError):
            repro.sim.not_a_name
