"""Engine batching: same-instant coalescing and RESUME-event recycling.

The engine's ordering contract — events fire in ``(time, seq)`` order, seq
strictly increasing per schedule call — must survive two optimizations:
skipping redundant clock advances when consecutive pops share an instant,
and recycling retired RESUME events through a freelist.  These tests pin
the contract from the outside (observed firing order) and the recycling
mechanics from the inside (pool population, fresh seq numbers, subscriber
and scalar-path opt-outs).
"""

import pytest

from repro import accel
from repro.sim.engine import Engine, EventKind, Timeout, WaitUntil


def ticker(log, label, delays):
    for delay in delays:
        yield Timeout(delay)
        log.append((label, delay))


class TestSameInstantCoalescing:
    def test_simultaneous_events_fire_in_seq_order(self):
        engine = Engine()
        order = []
        for label in "abc":
            engine.schedule(1.0, name=label, callback=lambda e: order.append(e.name))
        engine.schedule(0.5, name="first", callback=lambda e: order.append(e.name))
        engine.run()
        assert order == ["first", "a", "b", "c"]
        assert engine.now == 1.0

    def test_step_skips_redundant_advance_but_still_fires(self):
        engine = Engine()
        seen = []
        engine.schedule(0.0, callback=lambda e: seen.append(engine.now))
        engine.schedule(0.0, callback=lambda e: seen.append(engine.now))
        assert engine.step() is not None
        assert engine.step() is not None
        assert seen == [0.0, 0.0]

    def test_processes_interleave_deterministically_at_one_instant(self):
        engine = Engine()
        log = []
        engine.process(ticker(log, "a", [1.0, 1.0]), name="a")
        engine.process(ticker(log, "b", [1.0, 1.0]), name="b")
        engine.run()
        # Both resume at t=1 and t=2; within an instant, schedule order
        # (seq) decides — a before b, every round.
        assert log == [("a", 1.0), ("b", 1.0), ("a", 1.0), ("b", 1.0)]

    def test_run_until_matches_stepwise_execution(self):
        def build():
            engine = Engine()
            order = []
            for i, delay in enumerate([2.0, 1.0, 1.0, 3.0, 2.0]):
                engine.schedule(
                    delay, name=str(i), callback=lambda e: order.append(e.name)
                )
            return engine, order

        run_engine, run_order = build()
        run_engine.run()
        step_engine, step_order = build()
        while step_engine.step() is not None:
            pass
        assert run_order == step_order
        assert run_engine.now == step_engine.now


class TestResumeRecycling:
    def drain(self, engine):
        while engine.step() is not None:
            pass

    def test_pool_fills_from_retired_resumes(self):
        engine = Engine()
        log = []
        engine.process(ticker(log, "t", [1.0, 1.0, 1.0]), name="t")
        self.drain(engine)
        assert len(log) == 3
        if accel.vectorized_enabled():
            assert len(engine._resume_pool) >= 1

    def test_recycled_events_draw_fresh_seq(self):
        engine = Engine()
        seqs = []
        engine.subscribe(
            EventKind.RESUME, lambda e: seqs.append(e.seq)
        )

        def proc():
            yield Timeout(1.0)
            yield Timeout(1.0)
            yield Timeout(1.0)

        engine.process(proc(), name="p")
        self.drain(engine)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_subscribers_disable_recycling(self):
        # A handler may retain the event object, so the freelist must not
        # reuse events anyone could still observe.
        engine = Engine()
        retained = []
        engine.subscribe(EventKind.RESUME, retained.append)

        def proc():
            yield Timeout(1.0)
            yield Timeout(1.0)

        engine.process(proc(), name="p")
        self.drain(engine)
        assert engine._resume_pool == []
        assert len(retained) == 2
        assert len({id(event) for event in retained}) == 2

    def test_scalar_path_builds_plain_events(self):
        with accel.scalar_path(True):
            engine = Engine()
            log = []
            engine.process(ticker(log, "t", [1.0, 1.0]), name="t")
            self.drain(engine)
            assert engine._resume_pool == []
        assert len(log) == 2

    def test_pool_is_bounded(self):
        engine = Engine()
        procs = 3 * Engine._RESUME_POOL_LIMIT

        def one_shot():
            yield Timeout(1.0)

        for i in range(procs):
            engine.process(one_shot(), name=f"p{i}")
        self.drain(engine)
        assert len(engine._resume_pool) <= Engine._RESUME_POOL_LIMIT

    def test_wait_until_uses_absolute_time(self):
        # WaitUntil(when) must schedule at `when` exactly, not at
        # now + (when - now), which differs in floating point.
        engine = Engine()
        times = []

        def proc():
            yield Timeout(0.1)
            yield WaitUntil(0.30000000000000004)
            times.append(engine.now)

        engine.process(proc(), name="p")
        self.drain(engine)
        assert times == [0.30000000000000004]

    def test_ordering_identical_scalar_vs_vectorized(self):
        def run(scalar):
            with accel.scalar_path(scalar):
                engine = Engine()
                log = []
                engine.process(ticker(log, "a", [1.0, 2.0, 1.0]), name="a")
                engine.process(ticker(log, "b", [2.0, 1.0, 1.0]), name="b")
                engine.schedule(1.5, name="timer", callback=lambda e: log.append("t"))
                engine.run()
            return log

        assert run(scalar=True) == run(scalar=False)


class TestSchedulingErrors:
    def test_negative_delay_rejected(self):
        engine = Engine()

        def proc():
            yield Timeout(-1.0)

        with pytest.raises(Exception, match="past"):
            engine.process(proc(), name="p")

    def test_wait_until_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, callback=lambda e: None)
        engine.run()

        def proc():
            yield WaitUntil(0.5)

        with pytest.raises(Exception):
            engine.process(proc(), name="p")
