"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim.clock import Clock, ClockError
from repro.sim.engine import (
    Acquire,
    Engine,
    EngineError,
    EventKind,
    Resource,
    Timeout,
    WaitUntil,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, name="c", callback=lambda e: order.append(e.name))
        engine.schedule(1.0, name="a", callback=lambda e: order.append(e.name))
        engine.schedule(2.0, name="b", callback=lambda e: order.append(e.name))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_simultaneous_events_fire_in_scheduling_order(self):
        engine = Engine()
        order = []
        for name in "abcde":
            engine.schedule(1.0, name=name, callback=lambda e: order.append(e.name))
        engine.run()
        assert order == list("abcde")

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, callback=lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]

    def test_scheduling_into_the_past_raises(self):
        engine = Engine()
        engine.schedule(1.0, callback=lambda e: None)
        engine.run()
        with pytest.raises(EngineError):
            engine.schedule(-0.5)
        with pytest.raises(EngineError):
            engine.schedule_at(0.5)

    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        ev = engine.schedule(1.0, callback=lambda e: fired.append("cancelled"))
        engine.schedule(2.0, callback=lambda e: fired.append("kept"))
        ev.cancel()
        engine.run()
        assert fired == ["kept"]
        assert engine.fired == 1

    def test_run_until_leaves_later_events_queued(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, callback=lambda e: fired.append(1.0))
        engine.schedule(5.0, callback=lambda e: fired.append(5.0))
        engine.run(until=2.0)
        assert fired == [1.0]
        assert engine.now == 2.0
        assert engine.pending == 1
        engine.run()
        assert fired == [1.0, 5.0]

    def test_external_clock_is_shared(self):
        clock = Clock()
        engine = Engine(clock)
        engine.schedule(2.5, callback=lambda e: None)
        engine.run()
        assert clock.now == 2.5

    def test_clock_never_goes_backwards(self):
        engine = Engine()
        engine.schedule(1.0, callback=lambda e: None)
        engine.run()
        with pytest.raises(ClockError):
            engine.clock.advance_to(0.5)


class TestSubscriptions:
    def test_kind_subscription_sees_only_that_kind(self):
        engine = Engine()
        seen = []
        engine.subscribe(EventKind.FAULT, lambda e: seen.append(e.name))
        engine.schedule(1.0, EventKind.FAULT, name="f")
        engine.schedule(2.0, EventKind.TIMER, name="t")
        engine.run()
        assert seen == ["f"]

    def test_any_subscription_sees_everything_in_order(self):
        engine = Engine()
        seen = []
        engine.subscribe(None, lambda e: seen.append((e.kind, e.name)))
        engine.schedule(2.0, EventKind.TIMER, name="t")
        engine.schedule(1.0, EventKind.PRESSURE, name="p")
        engine.run()
        assert seen == [(EventKind.PRESSURE, "p"), (EventKind.TIMER, "t")]

    def test_callback_runs_before_subscribers(self):
        engine = Engine()
        order = []
        engine.subscribe(EventKind.TIMER, lambda e: order.append("sub"))
        engine.schedule(1.0, callback=lambda e: order.append("cb"))
        engine.run()
        assert order == ["cb", "sub"]

    def test_unsubscribe(self):
        engine = Engine()
        seen = []
        handler = lambda e: seen.append(e.name)  # noqa: E731
        engine.subscribe(EventKind.TIMER, handler)
        engine.schedule(1.0, name="first")
        engine.run()
        engine.unsubscribe(EventKind.TIMER, handler)
        engine.schedule(1.0, name="second")
        engine.run()
        assert seen == ["first"]


class TestProcesses:
    def test_process_yields_advance_time(self):
        engine = Engine()
        trail = []

        def work():
            trail.append(engine.now)
            yield 1.5
            trail.append(engine.now)
            yield Timeout(0.5)
            trail.append(engine.now)
            return "done"

        proc = engine.process(work(), name="w")
        result = engine.run_until_complete(proc)
        assert result == "done"
        assert trail == [0.0, 1.5, 2.0]
        assert proc.done

    def test_wait_until_absolute(self):
        engine = Engine()

        def work():
            yield WaitUntil(4.0)
            return engine.now

        proc = engine.process(work())
        assert engine.run_until_complete(proc) == 4.0

    def test_two_processes_interleave_deterministically(self):
        engine = Engine()
        trail = []

        def worker(name, delay, steps):
            for _ in range(steps):
                yield delay
                trail.append((name, engine.now))

        a = engine.process(worker("a", 1.0, 3), name="a")
        b = engine.process(worker("b", 1.5, 2), name="b")
        engine.run()
        assert a.done and b.done
        assert trail == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
        ]

    def test_run_until_complete_stops_at_process_end(self):
        engine = Engine()
        engine.schedule(10.0, name="later", callback=lambda e: None)

        def quick():
            yield 1.0

        proc = engine.process(quick())
        engine.run_until_complete(proc)
        # The later event must stay queued and the clock must not pass it.
        assert engine.now == 1.0
        assert engine.pending == 1

    def test_deadlock_is_reported(self):
        engine = Engine()
        gate = Resource("gate")

        def blocked():
            yield Acquire(gate)

        def holder():
            yield Acquire(gate)
            yield 1.0  # never releases

        engine.process(holder())
        proc = engine.process(blocked())
        with pytest.raises(EngineError, match="never"):
            engine.run_until_complete(proc)

    def test_unsupported_directive_raises(self):
        engine = Engine()

        def bad():
            yield "nonsense"

        with pytest.raises(EngineError, match="unsupported"):
            engine.process(bad())


class TestResources:
    def test_fifo_resource_serialises_holders(self):
        engine = Engine()
        res = Resource("channel")
        trail = []

        def worker(name, hold):
            grant = yield Acquire(res)
            assert grant is res
            trail.append((name, "acq", engine.now))
            yield hold
            res.release()
            trail.append((name, "rel", engine.now))

        engine.process(worker("a", 2.0), name="a")
        engine.process(worker("b", 1.0), name="b")
        engine.run()
        assert trail == [
            ("a", "acq", 0.0),
            ("a", "rel", 2.0),
            ("b", "acq", 2.0),
            ("b", "rel", 3.0),
        ]

    def test_priority_resource_serves_lower_priority_value_first(self):
        engine = Engine()
        res = Resource("lane", priority=True)
        served = []

        def holder():
            yield Acquire(res)
            yield 1.0
            res.release()

        def waiter(name, prio):
            yield Acquire(res, priority=prio)
            served.append(name)
            res.release()

        engine.process(holder())
        engine.process(waiter("background", 5))
        engine.process(waiter("urgent", 0))
        engine.run()
        assert served == ["urgent", "background"]

    def test_fifo_ties_break_by_arrival(self):
        engine = Engine()
        res = Resource("lane")
        served = []

        def holder():
            yield Acquire(res)
            yield 1.0
            res.release()

        def waiter(name):
            yield Acquire(res)
            served.append(name)
            res.release()

        engine.process(holder())
        for name in ("first", "second", "third"):
            engine.process(waiter(name))
        engine.run()
        assert served == ["first", "second", "third"]

    def test_multi_slot_capacity(self):
        engine = Engine()
        res = Resource("pool", capacity=2)
        concurrency = []

        def worker():
            yield Acquire(res)
            concurrency.append(res.in_use)
            yield 1.0
            res.release()

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert max(concurrency) == 2
        assert res.in_use == 0
        assert res.grants == 4

    def test_over_release_raises(self):
        res = Resource("r")
        with pytest.raises(EngineError):
            res.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource("r", capacity=0)

    def test_grant_events_fire(self):
        engine = Engine()
        res = Resource("lane")
        grants = []
        engine.subscribe(EventKind.GRANT, lambda e: grants.append(e.name))

        def worker():
            yield Acquire(res)
            res.release()

        engine.process(worker())
        engine.run()
        assert grants == ["lane"]


class TestDeterminism:
    def test_identical_programs_produce_identical_event_logs(self):
        def run_once():
            engine = Engine()
            log = []
            engine.subscribe(None, lambda e: log.append((e.time, e.seq, e.kind.value)))

            def worker(delay, steps):
                for _ in range(steps):
                    yield delay

            engine.process(worker(0.3, 5))
            engine.process(worker(0.5, 3))
            engine.schedule(1.0, EventKind.FAULT, name="f")
            engine.run()
            return log

        assert run_once() == run_once()

    def test_float_time_accumulation_matches_raw_clock(self):
        # The engine must advance time with the exact same float ops the
        # legacy loop used (now + delta), so accumulated times are
        # byte-identical, not merely close.
        deltas = [0.1, 0.2, 0.30000000000000004, 1e-9, 3.7]
        clock = Clock()
        for d in deltas:
            clock.advance(d)

        engine = Engine()

        def worker():
            for d in deltas:
                yield d

        engine.run_until_complete(engine.process(worker()))
        assert engine.now == clock.now


class TestInterrupt:
    def test_catch_and_continue(self):
        from repro.sim.engine import Interrupt

        engine = Engine()
        trail = []

        def work():
            try:
                yield 10.0
            except Interrupt:
                trail.append(("caught", engine.now))
            yield 1.0
            trail.append(("done", engine.now))

        proc = engine.process(work(), name="w")
        engine.schedule(2.0, callback=lambda _ev: proc.interrupt(Interrupt()))
        engine.run()
        assert proc.done and proc.error is None
        assert trail == [("caught", 2.0), ("done", 3.0)]

    def test_catch_and_return(self):
        from repro.sim.engine import Interrupt

        engine = Engine()

        def work():
            try:
                yield 10.0
            except Interrupt:
                return "cancelled"
            return "finished"

        proc = engine.process(work(), name="w")
        engine.schedule(1.0, callback=lambda _ev: proc.interrupt(Interrupt()))
        engine.run()
        assert proc.done
        assert proc.result == "cancelled"
        assert proc.error is None

    def test_uncaught_interrupt_records_error(self):
        from repro.sim.engine import Interrupt

        engine = Engine()

        def work():
            yield 10.0

        proc = engine.process(work(), name="w")
        engine.schedule(1.0, callback=lambda _ev: proc.interrupt(Interrupt("boom")))
        engine.run()
        assert proc.done
        assert isinstance(proc.error, Interrupt)

    def test_pending_resume_event_is_cancelled(self):
        from repro.sim.engine import Interrupt

        engine = Engine()
        resumed = []

        def work():
            yield 10.0
            resumed.append(engine.now)

        proc = engine.process(work(), name="w")
        engine.schedule(1.0, callback=lambda _ev: proc.interrupt(Interrupt()))
        engine.run()
        # The original resume-at-t=10 must not fire: time never reaches it.
        assert resumed == []
        assert engine.now == 1.0

    def test_interrupted_waiter_leaves_resource_queue(self):
        from repro.sim.engine import Interrupt

        engine = Engine()
        gate = Resource("gate")
        trail = []

        def holder():
            yield Acquire(gate)
            yield 5.0
            gate.release()

        def waiter(name):
            yield Acquire(gate)
            trail.append((name, engine.now))
            gate.release()

        engine.process(holder(), name="holder")
        victim = engine.process(waiter("victim"), name="victim")
        engine.process(waiter("lucky"), name="lucky")
        engine.schedule(1.0, callback=lambda _ev: victim.interrupt(Interrupt()))
        engine.run()
        # The victim was first in the FIFO queue; once interrupted, the
        # grant must go to the remaining waiter instead.
        assert trail == [("lucky", 5.0)]
        assert isinstance(victim.error, Interrupt)
        assert gate.in_use == 0

    def test_granted_but_undelivered_slot_is_returned(self):
        from repro.sim.engine import Interrupt

        engine = Engine()
        gate = Resource("gate")
        trail = []

        def holder():
            yield Acquire(gate)
            yield 1.0
            gate.release()

        def waiter(name):
            yield Acquire(gate)
            trail.append(name)
            gate.release()

        engine.process(holder(), name="holder")
        victim = engine.process(waiter("victim"), name="victim")
        engine.process(waiter("lucky"), name="lucky")
        # At t=1.0 the release schedules the victim's GRANT event; interrupt
        # it at the same instant, before the grant delivers.
        engine.schedule(
            1.0, callback=lambda _ev: victim.interrupt(Interrupt())
        )
        engine.run()
        assert trail == ["lucky"]
        assert gate.in_use == 0

    def test_interrupting_a_done_process_raises(self):
        from repro.sim.engine import Interrupt

        engine = Engine()

        def quick():
            yield 0.5

        proc = engine.process(quick(), name="q")
        engine.run()
        with pytest.raises(EngineError, match="already completed"):
            proc.interrupt(Interrupt())

    def test_unrelated_exception_from_generator_is_reraised(self):
        from repro.sim.engine import Interrupt

        engine = Engine()

        def buggy():
            try:
                yield 10.0
            except Interrupt:
                raise RuntimeError("cleanup bug")

        proc = engine.process(buggy(), name="b")
        with pytest.raises(RuntimeError, match="cleanup bug"):
            proc.interrupt(Interrupt())
        assert proc.done


class TestDiagnostics:
    def test_waiting_on_names_the_resource(self):
        engine = Engine()
        gate = Resource("the-gate")

        def holder():
            yield Acquire(gate)
            yield 10.0

        def blocked():
            yield Acquire(gate)

        engine.process(holder(), name="holder")
        proc = engine.process(blocked(), name="blocked")
        assert "the-gate" in proc.waiting_on()
        assert "1/1 slots held" in proc.waiting_on()

    def test_waiting_on_names_the_pending_event(self):
        engine = Engine()

        def sleeper():
            yield 3.5

        proc = engine.process(sleeper(), name="s")
        desc = proc.waiting_on()
        assert "resume" in desc and "3.5" in desc

    def test_deadlock_report_names_every_stuck_process(self):
        engine = Engine()
        gate = Resource("shared-channel")

        def holder():
            yield Acquire(gate)
            yield 1.0  # never releases

        def blocked():
            yield Acquire(gate)

        engine.process(holder(), name="greedy")
        proc = engine.process(blocked(), name="starved")
        with pytest.raises(EngineError) as err:
            engine.run_until_complete(proc)
        message = str(err.value)
        assert "starved" in message
        assert "shared-channel" in message

    def test_ensure_quiescent_passes_when_all_complete(self):
        engine = Engine()

        def quick():
            yield 0.1

        engine.process(quick(), name="q")
        engine.run()
        engine.ensure_quiescent()  # must not raise

    def test_ensure_quiescent_raises_on_stuck_process(self):
        engine = Engine()
        gate = Resource("stuck-gate")

        def holder():
            yield Acquire(gate)
            yield 1.0

        def blocked():
            yield Acquire(gate)

        engine.process(holder(), name="h")
        engine.process(blocked(), name="waiter")
        engine.run()  # drains silently: waiter still queued on the gate
        with pytest.raises(EngineError, match="stuck-gate"):
            engine.ensure_quiescent()
