"""Clock: monotonicity and error handling."""

import pytest

from repro.sim.clock import Clock, ClockError


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance_moves_forward(self):
        clock = Clock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now == 2.0

    def test_advance_zero_is_noop(self):
        clock = Clock(3.0)
        clock.advance(0.0)
        assert clock.now == 3.0

    def test_negative_advance_rejected(self):
        clock = Clock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = Clock()
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_same_time_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_past_rejected(self):
        clock = Clock(2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)
