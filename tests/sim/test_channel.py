"""BandwidthChannel: FIFO service, timing arithmetic, invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.channel import BandwidthChannel


class TestConstruction:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            BandwidthChannel(0.0)
        with pytest.raises(ValueError):
            BandwidthChannel(-1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            BandwidthChannel(1e9, latency=-1e-6)


class TestSubmit:
    def test_idle_channel_starts_immediately(self):
        channel = BandwidthChannel(1000.0)
        transfer = channel.submit(500, now=2.0)
        assert transfer.start == 2.0
        assert transfer.finish == pytest.approx(2.5)

    def test_latency_added_once_per_transfer(self):
        channel = BandwidthChannel(1000.0, latency=0.1)
        transfer = channel.submit(500, now=0.0)
        assert transfer.finish == pytest.approx(0.6)

    def test_fifo_queueing(self):
        channel = BandwidthChannel(1000.0)
        first = channel.submit(1000, now=0.0)
        second = channel.submit(1000, now=0.0)
        assert first.finish == pytest.approx(1.0)
        assert second.start == pytest.approx(1.0)
        assert second.finish == pytest.approx(2.0)
        assert second.queueing_delay == pytest.approx(1.0)

    def test_gap_leaves_channel_idle(self):
        channel = BandwidthChannel(1000.0)
        channel.submit(1000, now=0.0)
        late = channel.submit(1000, now=5.0)
        assert late.start == 5.0

    def test_zero_bytes_completes_after_latency(self):
        channel = BandwidthChannel(1000.0, latency=0.25)
        transfer = channel.submit(0, now=1.0)
        assert transfer.finish == pytest.approx(1.25)

    def test_negative_bytes_rejected(self):
        channel = BandwidthChannel(1000.0)
        with pytest.raises(ValueError):
            channel.submit(-1, now=0.0)

    def test_done_by(self):
        channel = BandwidthChannel(1000.0)
        transfer = channel.submit(1000, now=0.0)
        assert not transfer.done_by(0.5)
        assert transfer.done_by(1.0)

    def test_accounting(self):
        channel = BandwidthChannel(1000.0)
        channel.submit(300, now=0.0)
        channel.submit(700, now=0.0)
        assert channel.bytes_moved == 1000
        assert channel.busy_time == pytest.approx(1.0)
        assert len(channel.history) == 2

    def test_backlog_and_idle(self):
        channel = BandwidthChannel(1000.0)
        assert channel.idle_from(0.0)
        channel.submit(2000, now=0.0)
        assert channel.backlog_at(0.5) == pytest.approx(1.5)
        assert not channel.idle_from(1.0)
        assert channel.idle_from(2.0)

    def test_reset(self):
        channel = BandwidthChannel(1000.0)
        channel.submit(1000, now=0.0)
        channel.reset()
        assert channel.bytes_moved == 0
        assert channel.next_free == 0.0
        assert channel.history == []


class TestReset:
    """reset() must zero *every* counter — regression for the bookkeeping
    that once survived a reset (aborted-transfer counts, scheduled engine
    completions)."""

    def test_all_counters_zeroed(self):
        channel = BandwidthChannel(1000.0, latency=0.1)
        channel.submit(1000, now=0.0)
        channel.submit(500, now=0.0, aborted=True)
        assert channel.aborted_transfers == 1
        channel.reset()
        assert channel.next_free == 0.0
        assert channel.busy_time == 0.0
        assert channel.bytes_moved == 0
        assert channel.aborted_transfers == 0
        assert channel.history == []

    def test_reset_cancels_scheduled_completion_events(self):
        from repro.sim.engine import Engine, EventKind

        engine = Engine()
        channel = BandwidthChannel(1000.0)
        channel.bind_engine(engine)
        fired = []
        engine.subscribe(EventKind.TRANSFER_DONE, fired.append)
        channel.submit(1000, now=0.0)
        channel.reset()
        # The discarded transfer's completion must never be delivered.
        engine.run()
        assert fired == []
        assert channel._pending_events == []

    def test_reset_does_not_cancel_other_channels_events(self):
        from repro.sim.engine import Engine, EventKind

        engine = Engine()
        kept = BandwidthChannel(1000.0, name="kept")
        dropped = BandwidthChannel(1000.0, name="dropped")
        kept.bind_engine(engine)
        dropped.bind_engine(engine)
        fired = []
        engine.subscribe(EventKind.TRANSFER_DONE, fired.append)
        kept.submit(1000, now=0.0)
        dropped.submit(1000, now=0.0)
        dropped.reset()
        engine.run()
        assert [event.name for event in fired] == ["kept"]

    def test_channel_usable_after_reset(self):
        from repro.sim.engine import Engine, EventKind

        engine = Engine()
        channel = BandwidthChannel(1000.0)
        channel.bind_engine(engine)
        channel.submit(1000, now=0.0)
        channel.reset()
        fired = []
        engine.subscribe(EventKind.TRANSFER_DONE, fired.append)
        transfer = channel.submit(2000, now=0.0)
        assert transfer.start == 0.0  # FIFO horizon really was cleared
        engine.run()
        assert [event.payload["transfer"] for event in fired] == [transfer]

    def test_pending_event_list_is_pruned_under_load(self):
        from repro.sim.engine import Engine

        engine = Engine()
        channel = BandwidthChannel(1e9)
        channel.bind_engine(engine)
        for index in range(200):
            channel.submit(8, now=engine.now)
            engine.run()  # drain completions so fired events are prunable
        assert len(channel._pending_events) <= 65


class TestChannelProperties:
    @given(
        requests=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**9),
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_fifo_ordering_invariants(self, requests):
        """Transfers never overlap, never start before submission, and the
        channel conserves bytes."""
        # Submissions must be in non-decreasing time order (callers only
        # submit at the current clock).
        requests = sorted(requests, key=lambda r: r[1])
        channel = BandwidthChannel(1e6, latency=1e-6)
        transfers = [channel.submit(nbytes, now) for nbytes, now in requests]
        for transfer, (nbytes, now) in zip(transfers, requests):
            assert transfer.start >= now
            assert transfer.finish >= transfer.start
        for earlier, later in zip(transfers, transfers[1:]):
            assert later.start >= earlier.finish
        assert channel.bytes_moved == sum(n for n, _ in requests)

    @given(
        nbytes=st.integers(min_value=1, max_value=10**9),
        bandwidth=st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    )
    def test_service_time_is_linear(self, nbytes, bandwidth):
        channel = BandwidthChannel(bandwidth)
        assert channel.service_time(nbytes) == pytest.approx(nbytes / bandwidth)
