"""Multi-workload co-scheduling: contention, fairness, determinism.

The cluster harness's claims, each pinned here:

* co-scheduled workloads actually contend — at *matched* fast capacity the
  sum of steady step times across tenants exceeds the sum of the same
  workloads run alone, and the shared channels show nonzero queueing delay
  (an isolated run never queues behind itself);
* the run is deterministic — same specs, same machine config, same trace
  digest, including under chaos;
* spec and argument validation fails fast with actionable messages.
"""

import pytest

from repro.chaos import ChaosConfig, FaultInjector
from repro.harness.cluster import (
    DEFAULT_CLUSTER_PRESSURE,
    ClusterReport,
    WorkloadSpec,
    run_concurrent,
)
from repro.harness.runner import run_policy
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models.zoo import build_model
from repro.obs import EventTracer, canonical_digest

MODELS = ("dcgan", "lstm")
POLICY = "ial"


def matched_capacity(models=MODELS, fraction=0.2):
    combined = sum(build_model(m).peak_memory_bytes() for m in models)
    return max(OPTANE_HM.page_size, int(combined * fraction))


def cluster_specs(models=MODELS, policy=POLICY, steps=4):
    return [
        WorkloadSpec(name=f"{model}-{i}", model=model, policy=policy, steps=steps)
        for i, model in enumerate(models)
    ]


class TestContention:
    def test_co_scheduling_is_slower_than_isolation_at_matched_capacity(self):
        # The acceptance criterion of the engine refactor: same fast-tier
        # budget, the only difference is sharing the machine.
        cap = matched_capacity()
        iso_sum = sum(
            run_policy(POLICY, model=m, fast_capacity=cap).step_time
            for m in MODELS
        )
        report = run_concurrent(cluster_specs(), fast_capacity=cap)
        cluster_sum = sum(w.steady_step_time for w in report.workloads)
        assert cluster_sum > iso_sum

    def test_shared_channels_show_queueing_delay(self):
        report = run_concurrent(cluster_specs(), fast_capacity=matched_capacity())
        assert max(report.channel_queue_delay.values()) > 0.0
        assert all(d >= 0.0 for d in report.channel_queue_delay.values())
        assert set(report.channel_busy) == {"promote", "demote", "demand-promote"}

    def test_single_workload_degenerates_cleanly(self):
        # One tenant through the cluster path: no co-tenant, so no queueing
        # beyond what the workload inflicts on itself.
        spec = cluster_specs(models=("dcgan",))[0]
        report = run_concurrent([spec], fast_fraction=0.2)
        assert report.workloads[0].steps == 4
        assert report.makespan > 0
        assert report.fairness == pytest.approx(1.0)

    def test_report_aggregates(self):
        report = run_concurrent(cluster_specs(), fast_fraction=0.2)
        assert isinstance(report, ClusterReport)
        assert 0.0 < report.fairness <= 1.0
        assert report.aggregate_steps_per_second > 0
        assert report.promoted_bytes + report.demoted_bytes > 0
        for workload in report.workloads:
            assert workload.steps == 4
            assert workload.total_time > 0
            assert workload.mean_step_time > 0
        assert report.workload("dcgan-0").policy == POLICY
        with pytest.raises(KeyError):
            report.workload("nope")

    def test_sentinel_tenants_run_their_full_phase_schedule(self):
        report = run_concurrent(
            cluster_specs(policy="sentinel", steps=2), fast_fraction=0.2
        )
        for workload in report.workloads:
            # 2 steady + warmup (2) + 1 profiling step
            assert workload.steps == 5


class TestDeterminism:
    def run_traced(self, chaos_seed=None):
        injector = None
        if chaos_seed is not None:
            injector = FaultInjector(ChaosConfig.uniform(0.2, seed=chaos_seed))
        tracer = EventTracer()
        machine = Machine.for_platform(
            OPTANE_HM.with_fast_capacity(matched_capacity()),
            injector=injector,
            tracer=tracer,
            pressure=DEFAULT_CLUSTER_PRESSURE,
        )
        report = run_concurrent(cluster_specs(), machine=machine, tracer=tracer)
        return report, canonical_digest(tracer.events)

    def test_same_specs_same_trace_digest(self):
        first_report, first_digest = self.run_traced()
        second_report, second_digest = self.run_traced()
        assert first_digest == second_digest
        assert first_report.makespan == second_report.makespan
        assert [w.steady_step_time for w in first_report.workloads] == [
            w.steady_step_time for w in second_report.workloads
        ]

    def test_deterministic_under_chaos(self):
        _, first = self.run_traced(chaos_seed=11)
        _, second = self.run_traced(chaos_seed=11)
        assert first == second

    def test_chaos_seed_changes_the_run(self):
        _, clean = self.run_traced()
        _, chaotic = self.run_traced(chaos_seed=11)
        assert clean != chaotic

    def test_chaos_determinism_holds_across_three_runs(self):
        digests = {self.run_traced(chaos_seed=23)[1] for _ in range(3)}
        assert len(digests) == 1

    def test_chaos_trace_tracks_stay_well_formed(self):
        """Under chaos each workload's track still closes every span it
        opens, in nesting order — chaos perturbs timing, not structure."""
        from repro.obs.query import TraceQuery

        injector = FaultInjector(ChaosConfig.uniform(0.2, seed=11))
        tracer = EventTracer()
        machine = Machine.for_platform(
            OPTANE_HM.with_fast_capacity(matched_capacity()),
            injector=injector,
            tracer=tracer,
            pressure=DEFAULT_CLUSTER_PRESSURE,
        )
        run_concurrent(cluster_specs(), machine=machine, tracer=tracer)
        query = TraceQuery(tracer.events)
        for spec in cluster_specs():
            events = [e for e in tracer.events if e.track == spec.name]
            assert events, spec.name
            begins = sum(1 for e in events if e.ph == "B")
            ends = sum(1 for e in events if e.ph == "E")
            assert begins == ends, spec.name
            step_spans = [
                s
                for s in query.spans(cat="step")
                if s.track == spec.name and s.name == "step"
            ]
            # Every configured step closed, despite injected faults.
            assert len(step_spans) == 4
            assert all(s.end >= s.start for s in step_spans)

    def test_workload_tracks_are_separated_in_the_trace(self):
        tracer = EventTracer()
        run_concurrent(cluster_specs(), fast_fraction=0.2, tracer=tracer)
        tracks = {e.track for e in tracer.events if e.cat == "step"}
        assert {"dcgan-0", "lstm-1"} <= tracks
        cluster_events = [e for e in tracer.events if e.cat == "cluster"]
        assert len(cluster_events) == 8  # one workload-step instant per step


class TestValidation:
    def test_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            WorkloadSpec(name="w")
        with pytest.raises(ValueError, match="exactly one"):
            WorkloadSpec(name="w", model="dcgan", graph=build_model("dcgan"))

    def test_spec_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError, match="positive"):
            WorkloadSpec(name="w", model="dcgan", steps=0)

    def test_duplicate_names_rejected(self):
        specs = [
            WorkloadSpec(name="same", model="dcgan"),
            WorkloadSpec(name="same", model="lstm"),
        ]
        with pytest.raises(ValueError, match="unique"):
            run_concurrent(specs)

    def test_duplicate_names_are_listed_in_the_error(self):
        specs = [
            WorkloadSpec(name="twin", model="dcgan"),
            WorkloadSpec(name="twin", model="lstm"),
            WorkloadSpec(name="solo", model="dcgan"),
        ]
        with pytest.raises(ValueError, match="'twin'"):
            run_concurrent(specs)

    def test_steps_mutated_after_construction_still_rejected(self):
        spec = WorkloadSpec(name="w", model="dcgan")
        spec.steps = 0
        with pytest.raises(ValueError, match="steps must be positive"):
            run_concurrent([spec])

    def test_empty_graph_rejected(self):
        # GraphBuilder.finish() refuses empty graphs, so a hand-built Graph
        # is the only way one reaches the harness — it must still fail with
        # the harness's own actionable message, not hang the engine.
        from repro.dnn.graph import Graph

        empty = Graph(name="empty", batch_size=1, layers=[], tensors=[])
        with pytest.raises(ValueError, match="no layers"):
            run_concurrent([WorkloadSpec(name="w", graph=empty)])

    def test_empty_workload_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_concurrent([])

    def test_tracer_with_untraced_machine_rejected(self):
        machine = Machine.for_platform(OPTANE_HM)
        with pytest.raises(ValueError, match="tracer"):
            run_concurrent(
                cluster_specs(), machine=machine, tracer=EventTracer()
            )

    def test_bad_fast_fraction_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            run_concurrent(cluster_specs(), fast_fraction=0.0)


class TestConcurrentCLI:
    def test_concurrent_command_prints_report(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "concurrent",
                    "dcgan",
                    "lstm",
                    "--policies",
                    "ial",
                    "--steps",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "workloads co-scheduled" in out
        assert "dcgan-0" in out and "lstm-1" in out
        assert "makespan" in out and "fairness" in out
        assert "mean channel queueing delay" in out

    def test_concurrent_isolated_flag_adds_comparison(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "concurrent",
                    "dcgan",
                    "lstm",
                    "--policies",
                    "ial",
                    "--steps",
                    "2",
                    "--isolated",
                ]
            )
            == 0
        )
        assert "vs isolated" in capsys.readouterr().out

    def test_concurrent_trace_export_validates(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.obs import validate_chrome

        path = tmp_path / "cluster.json"
        assert (
            main(
                [
                    "concurrent",
                    "dcgan",
                    "lstm",
                    "--policies",
                    "ial",
                    "--steps",
                    "2",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        assert "trace:" in capsys.readouterr().out
        assert validate_chrome(json.loads(path.read_text())) > 0

    def test_policy_count_mismatch_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "concurrent",
                    "dcgan",
                    "lstm",
                    "--policies",
                    "ial",
                    "sentinel",
                    "first-touch",
                ]
            )
            == 2
        )
        assert "one per model" in capsys.readouterr().err
