"""Sweep utility: grids, failure tolerance, queries."""

import pytest

from repro.harness.sweeps import SweepPoint, sweep
from repro.mem.platforms import GPU_HM


class TestSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return sweep(
            policies=("slow-only", "sentinel", "ial"),
            models=("dcgan", "lstm"),
            fast_fractions=(0.25,),
            batch_sizes={"dcgan": 32, "lstm": 32},
        )

    def test_grid_covers_product(self, grid):
        # slow-only contributes one point per model; the rest one per
        # (model, fraction).
        assert len(grid) == 2 * 3
        assert all(isinstance(p, SweepPoint) for p in grid)

    def test_all_points_succeeded(self, grid):
        assert all(p.ok for p in grid)

    def test_where_filters(self, grid):
        sentinel_points = grid.where(policy="sentinel")
        assert len(sentinel_points) == 2
        assert {p.model for p in sentinel_points} == {"dcgan", "lstm"}

    def test_best_policy(self, grid):
        best = grid.best_policy("dcgan")
        assert best in ("sentinel", "ial")

    def test_to_table_renders_matrix(self, grid):
        text = grid.to_table()
        assert "dcgan" in text and "lstm" in text
        assert "sentinel" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep(policies=(), models=("lstm",))

    def test_unsupported_points_recorded_not_raised(self):
        grid = sweep(
            policies=("vdnn",),
            models=("lstm",),
            batch_sizes={"lstm": 16},
            platform=GPU_HM,
        )
        point = grid.points[0]
        assert not point.ok
        assert point.failure == "unsupported"
        assert "unsupported" in grid.to_table()

    def test_best_policy_requires_a_success(self):
        grid = sweep(
            policies=("vdnn",),
            models=("lstm",),
            batch_sizes={"lstm": 16},
            platform=GPU_HM,
        )
        with pytest.raises(ValueError):
            grid.best_policy("lstm")


class TestSweepInsight:
    def test_insight_off_by_default(self):
        grid = sweep(
            policies=("sentinel",),
            models=("dcgan",),
            fast_fractions=(0.3,),
            batch_sizes={"dcgan": 32},
        )
        assert all(p.insight is None for p in grid)

    def test_insight_attaches_validated_reports(self):
        from repro.obs import validate_insight

        grid = sweep(
            policies=("sentinel", "ial"),
            models=("dcgan",),
            fast_fractions=(0.3,),
            batch_sizes={"dcgan": 32},
            insight=True,
        )
        for point in grid:
            assert point.ok
            validate_insight(point.insight)
            assert point.insight["meta"]["policy"] == point.policy
            assert point.insight["meta"]["model"] == point.model

    def test_insight_does_not_change_metrics(self):
        kwargs = dict(
            policies=("sentinel",),
            models=("dcgan",),
            fast_fractions=(0.3,),
            batch_sizes={"dcgan": 32},
        )
        bare = sweep(**kwargs).points[0]
        with_insight = sweep(insight=True, **kwargs).points[0]
        assert with_insight.metrics.step_time == bare.metrics.step_time
