"""CLI: argument parsing and command execution."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "alexnet", "sentinel"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lstm", "magic"])

    def test_platform_choices(self):
        args = build_parser().parse_args(["run", "lstm", "sentinel", "--platform", "gpu"])
        from repro.mem.platforms import GPU_HM

        assert args.platform is GPU_HM
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lstm", "sentinel", "--platform", "tpu"])

    def test_every_experiment_id_maps_to_a_function(self):
        from repro.harness import experiments

        for function_name in EXPERIMENTS.values():
            assert hasattr(experiments, function_name)


class TestCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("resnet32", "bert-large", "lstm", "dcgan"):
            assert name in out

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "lstm", "slow-only", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "step time (s)" in out
        assert "lstm / slow-only" in out

    def test_run_sentinel_shows_extras(self, capsys):
        assert main(
            ["run", "lstm", "sentinel", "--batch", "16", "--fast-fraction", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "extras.interval_length" in out

    def test_profile_lists_hot_tensors(self, capsys):
        assert main(["profile", "dcgan", "--batch", "16", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "hottest tensors" in out
        assert "lower bound" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "lstm", "--batch", "16", "--fractions", "0.3", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "vs fast-only" in out
        assert "30%" in out

    def test_grid_renders_matrix(self, capsys):
        assert main(
            ["grid", "--models", "lstm", "--policies", "slow-only", "sentinel",
             "--fast-fraction", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep: step_time" in out
        assert "lstm" in out

    def test_features_prints_table1(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "sentinel-gpu" in out

    def test_compare_handles_unsupported_models(self, capsys):
        assert main(
            ["compare", "lstm", "--batch", "8", "--platform", "gpu"]
        ) == 0
        out = capsys.readouterr().out
        assert "vdnn" in out
        assert "x" in out  # vDNN cannot run the LSTM

    def test_run_with_fault_injection(self, capsys):
        assert main(
            ["run", "dcgan", "sentinel", "--batch", "8", "--fast-fraction", "0.2",
             "--fault-rate", "0.2", "--chaos-seed", "7", "--audit"]
        ) == 0
        out = capsys.readouterr().out
        assert "extras.migration_retries" in out
        assert "extras.chaos.migration_busy" in out

    def test_run_bad_fault_rate_rejected(self):
        with pytest.raises(ValueError):
            main(["run", "dcgan", "sentinel", "--fault-rate", "1.5"])

    def test_chaos_sweep_renders_degradation_table(self, capsys):
        assert main(
            ["chaos", "dcgan", "--policies", "sentinel",
             "--fault-rates", "0.0", "0.2", "--chaos-seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "under injected faults" in out
        assert "injected-fault totals" in out
        assert "vs 0%" in out


class TestTraceCommands:
    def test_trace_summary_to_stdout(self, capsys):
        assert main(["trace", "dcgan", "sentinel", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "category" in out
        assert "migration" in out
        assert "tracks:" in out

    def test_trace_chrome_export_validates(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome

        path = tmp_path / "trace.json"
        assert main(
            ["trace", "dcgan", "sentinel", "--batch", "8", "--out", str(path)]
        ) == 0
        obj = json.loads(path.read_text())
        assert validate_chrome(obj) > 0
        assert "chrome" in capsys.readouterr().out

    def test_trace_jsonl_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "dcgan", "sentinel", "--batch", "8",
             "--out", str(path), "--format", "jsonl"]
        ) == 0
        lines = path.read_text().strip().split("\n")
        assert len(lines) > 100
        record = json.loads(lines[0])
        assert {"name", "cat", "ph", "ts"} <= set(record)

    def test_trace_with_fault_injection(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["trace", "dcgan", "sentinel", "--batch", "8", "--fault-rate", "0.2",
             "--chaos-seed", "5", "--out", str(path)]
        ) == 0
        obj = json.loads(path.read_text())
        cats = {row.get("cat") for row in obj["traceEvents"]}
        assert "chaos" in cats

    def test_run_trace_flag_writes_chrome(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome

        path = tmp_path / "run.json"
        assert main(
            ["run", "dcgan", "sentinel", "--batch", "8", "--trace", str(path)]
        ) == 0
        assert validate_chrome(json.loads(path.read_text())) > 0
        assert "trace:" in capsys.readouterr().out

    def test_grid_trace_flag_combines_points(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome

        path = tmp_path / "grid.json"
        assert main(
            ["grid", "--models", "dcgan", "--policies", "slow-only", "sentinel",
             "--fast-fraction", "0.3", "--trace", str(path)]
        ) == 0
        obj = json.loads(path.read_text())
        assert validate_chrome(obj) > 0
        pids = {row["pid"] for row in obj["traceEvents"]}
        assert len(pids) == 2  # one Perfetto process per grid point


class TestPressureCommands:
    def test_watermarks_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "dcgan", "sentinel", "--fast-watermarks", "0.6,0.8"]
        )
        assert args.fast_watermarks == (0.6, 0.8)

    def test_watermarks_flag_rejects_garbage(self):
        for bad in ("0.6", "0.6,0.8,0.9", "high,low"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["run", "dcgan", "sentinel", "--fast-watermarks", bad]
                )

    def test_run_without_flags_builds_no_governor(self):
        from repro.cli import _pressure_from

        args = build_parser().parse_args(["run", "dcgan", "sentinel"])
        assert _pressure_from(args) is None

    def test_run_with_flags_prints_pressure_section(self, capsys):
        assert (
            main(
                [
                    "run",
                    "dcgan",
                    "sentinel",
                    "--batch",
                    "8",
                    "--fast-fraction",
                    "0.05",
                    "--fast-watermarks",
                    "0.75,0.9",
                    "--reserve-frames",
                    "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pressure:" in out
        assert "spills" in out
        assert "reclaims" in out

    def test_run_without_flags_prints_no_pressure_section(self, capsys):
        assert main(["run", "dcgan", "sentinel", "--batch", "8"]) == 0
        assert "pressure:" not in capsys.readouterr().out

    def test_pressure_command_renders_survival_table(self, capsys, tmp_path):
        trace_path = tmp_path / "pressure.json"
        assert (
            main(
                [
                    "pressure",
                    "--models",
                    "dcgan",
                    "--policies",
                    "sentinel",
                    "--fractions",
                    "0.1",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Pressure survival" in out
        assert "every point must complete" in out
        import json

        from repro.obs import validate_chrome

        with open(trace_path) as handle:
            assert validate_chrome(json.load(handle)) > 0


class TestCritpathCommand:
    def test_prints_attribution_and_critical_path(self, capsys):
        assert main(["critpath", "dcgan", "sentinel", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "step attribution" in out
        assert "mig stall" in out and "contention" in out
        assert "what-if free migration" in out
        assert "critical path (step" in out

    def test_bandwidth_scale_flag(self, capsys):
        assert (
            main(
                [
                    "critpath",
                    "dcgan",
                    "sentinel",
                    "--batch",
                    "8",
                    "--bandwidth-scale",
                    "4",
                ]
            )
            == 0
        )
        assert "what-if 4x bandwidth" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "attribution.json"
        assert (
            main(
                ["critpath", "dcgan", "sentinel", "--batch", "8", "--json", str(path)]
            )
            == 0
        )
        import json

        payload = json.loads(path.read_text())
        assert payload["model"] == "dcgan"
        for step in payload["steps"]:
            components = sum(
                step[key]
                for key in (
                    "compute",
                    "migration_stall",
                    "channel_contention",
                    "fault",
                    "pressure_reclaim",
                    "idle",
                )
            )
            assert abs(components - step["duration"]) < 1e-6

    def test_truncated_trace_refused_with_error(self, capsys):
        # A tiny ring buffer guarantees drops on any real run; the command
        # must refuse clearly instead of printing partial numbers.
        assert (
            main(
                ["critpath", "dcgan", "sentinel", "--batch", "8", "--capacity", "64"]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "attribution may be partial" in captured.err


class TestBenchCommand:
    def test_writes_artifacts_and_commits_first_baseline(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "bench",
                    "--models",
                    "dcgan",
                    "--out-dir",
                    str(out_dir),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "attribution benchmark" in out
        assert "first run" in out
        assert (out_dir / "BENCH_attribution.json").exists()
        assert (out_dir / "BENCH_step_time.json").exists()
        assert baseline.exists()

        # Second run against the just-written baseline passes the gate.
        assert (
            main(
                [
                    "bench",
                    "--models",
                    "dcgan",
                    "--out-dir",
                    str(out_dir),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert "benchmark gate passed" in capsys.readouterr().out

    def test_regression_fails_with_nonzero_exit(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "artifacts"
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "bench",
                    "--models",
                    "dcgan",
                    "--out-dir",
                    str(out_dir),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doctored = json.loads(baseline.read_text())
        doctored["models"]["dcgan"]["median_step_time"] *= 0.5
        baseline.write_text(json.dumps(doctored))
        assert (
            main(
                [
                    "bench",
                    "--models",
                    "dcgan",
                    "--out-dir",
                    str(out_dir),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().err

    def test_update_baseline_rewrites_instead_of_gating(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "artifacts"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "models": {
                        "dcgan": {"median_step_time": 1e-9, "step_times": [1e-9]}
                    },
                }
            )
        )
        assert (
            main(
                [
                    "bench",
                    "--models",
                    "dcgan",
                    "--out-dir",
                    str(out_dir),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert "baseline updated" in capsys.readouterr().out
        refreshed = json.loads(baseline.read_text())
        assert refreshed["models"]["dcgan"]["median_step_time"] > 1e-3


class TestAdmissionCommands:
    def test_admission_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "dcgan", "sentinel", "--admission", "feedback",
             "--admission-args", "stall_target=0.05"]
        )
        assert args.admission == "feedback"
        assert args.admission_args == "stall_target=0.05"

    def test_unknown_controller_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "dcgan", "sentinel", "--admission", "magic"]
            )

    def test_args_without_controller_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "dcgan", "sentinel", "--admission-args", "x=1"])

    def test_run_prints_admission_section(self, capsys):
        assert main(
            ["run", "dcgan", "sentinel", "--fast-fraction", "0.2",
             "--admission", "feedback"]
        ) == 0
        out = capsys.readouterr().out
        assert "admission (feedback):" in out
        assert "admitted bytes" in out

    def test_run_without_flag_prints_no_admission_section(self, capsys):
        assert main(["run", "lstm", "slow-only", "--batch", "8"]) == 0
        assert "admission" not in capsys.readouterr().out

    def test_serve_migration_admission_flag(self, capsys):
        assert main(
            ["serve", "--scenario", "steady", "--horizon", "20",
             "--migration-admission", "benefit-cost"]
        ) == 0
        assert "serving" in capsys.readouterr().out


class TestTournamentCommand:
    def test_leaderboard_and_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "tournament.json"
        argv = [
            "tournament", "--models", "dcgan", "--policies", "sentinel",
            "--admissions", "always", "feedback", "--governor", "off",
            "--json", str(artifact),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "tournament leaderboard" in out
        assert "feedback" in out
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "tournament/v1"
        first = artifact.read_bytes()
        assert main(argv) == 0
        assert artifact.read_bytes() == first  # byte-identical rerun

    def test_unknown_admission_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tournament", "--admissions", "magic"])
