"""Benchmark harness: artifact shape, byte-stability, and the regression gate."""

import json

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA,
    attribution_benchmark,
    check_regression,
    load_bench,
    step_time_payload,
    write_bench,
)


@pytest.fixture(scope="module")
def payload():
    return attribution_benchmark(models=("dcgan",))


class TestArtifacts:
    def test_payload_shape(self, payload):
        assert payload["schema"] == BENCH_SCHEMA
        entry = payload["models"]["dcgan"]
        assert entry["steps"] == len(entry["step_times"])
        assert entry["median_step_time"] > 0.0
        assert set(entry["attribution_totals"]) == {
            "compute",
            "migration_stall",
            "channel_contention",
            "fault",
            "pressure_reclaim",
            "ras_recovery",
            "idle",
        }
        # What-ifs are bounds: free migration <= measured median.
        assert entry["what_if_free_migration"] <= entry["median_step_time"]
        assert entry["what_if_2x_bandwidth"] <= entry["median_step_time"]

    def test_step_time_projection(self, payload):
        gate = step_time_payload(payload)
        assert gate["schema"] == payload["schema"]
        assert set(gate["models"]["dcgan"]) == {"median_step_time", "step_times"}

    def test_write_and_load_round_trip(self, payload, tmp_path):
        path = tmp_path / "nested" / "BENCH_step_time.json"
        gate = step_time_payload(payload)
        write_bench(gate, path)
        assert load_bench(path) == gate
        # Canonical rendering: sorted keys, trailing newline, rewritable.
        first = path.read_text()
        assert first.endswith("\n")
        write_bench(json.loads(first), path)
        assert path.read_text() == first

    def test_load_missing_returns_none(self, tmp_path):
        assert load_bench(tmp_path / "absent.json") is None


def gate(median, model="dcgan"):
    return {
        "schema": BENCH_SCHEMA,
        "models": {model: {"median_step_time": median, "step_times": [median]}},
    }


class TestRegressionGate:
    def test_identical_run_passes(self):
        assert check_regression(gate(1.0), gate(1.0)) == []

    def test_within_threshold_passes(self):
        assert check_regression(gate(1.0), gate(1.04)) == []

    def test_beyond_threshold_fails(self):
        problems = check_regression(gate(1.0), gate(1.06))
        assert len(problems) == 1
        assert "regressed" in problems[0] and "dcgan" in problems[0]

    def test_improvement_passes(self):
        assert check_regression(gate(1.0), gate(0.5)) == []

    def test_custom_threshold(self):
        assert check_regression(gate(1.0), gate(1.04), threshold=0.01)
        assert not check_regression(gate(1.0), gate(1.3), threshold=0.5)
        with pytest.raises(ValueError):
            check_regression(gate(1.0), gate(1.0), threshold=-0.1)

    def test_model_missing_from_current_fails(self):
        baseline = gate(1.0)
        baseline["models"]["lstm"] = {"median_step_time": 2.0, "step_times": [2.0]}
        problems = check_regression(baseline, gate(1.0))
        assert any("lstm" in p and "missing" in p for p in problems)

    def test_model_missing_from_baseline_is_reported(self):
        problems = check_regression(gate(1.0), gate(1.0, model="other"))
        assert any("not in baseline" in p for p in problems)
        assert any("missing from current" in p for p in problems)


class TestCommittedBaseline:
    def test_committed_baseline_matches_current_tree(self):
        # The CI gate compares against benchmarks/BENCH_step_time.json; a
        # drifted committed baseline would make every CI run fail (or pass
        # vacuously), so regenerating it must reproduce the committed file.
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        committed = load_bench(root / "benchmarks" / "BENCH_step_time.json")
        assert committed is not None, "baseline missing — run: repro bench"
        fresh = step_time_payload(
            attribution_benchmark(models=tuple(sorted(committed["models"])))
        )
        assert check_regression(committed, fresh) == []
        assert fresh == committed, (
            "committed BENCH_step_time.json is stale — regenerate with "
            "PYTHONPATH=src python -m repro bench --out-dir benchmarks"
        )


class TestWallclock:
    def test_trimmed_median_drops_slow_tail_only(self):
        from repro.harness.bench import _trimmed_median

        assert _trimmed_median([1.0, 2.0, 100.0], trim=1) == 1.5
        assert _trimmed_median([3.0], trim=1) == 3.0
        assert _trimmed_median([1.0, 2.0, 3.0, 4.0, 50.0], trim=1) == 2.5
        with pytest.raises(ValueError):
            _trimmed_median([], trim=1)

    def test_wallclock_payload_shape(self):
        from repro import accel
        from repro.harness.bench import WALLCLOCK_SCHEMA, wallclock_benchmark

        before = accel.scalar_enabled()
        payload = wallclock_benchmark(models=("dcgan",), repeats=1, trim=0)
        assert accel.scalar_enabled() == before  # flag restored
        assert payload["schema"] == WALLCLOCK_SCHEMA
        entry = payload["models"]["dcgan"]
        assert entry["steps_per_sec"] > 0.0
        assert entry["scalar_steps_per_sec"] > 0.0
        assert entry["speedup_vs_scalar"] > 0.0

    def test_wallclock_gate_band(self):
        from repro.harness.bench import check_wallclock_regression

        baseline = {"models": {"dcgan": {"speedup_vs_scalar": 2.0}}}
        same = {"models": {"dcgan": {"speedup_vs_scalar": 2.0}}}
        within = {"models": {"dcgan": {"speedup_vs_scalar": 1.6}}}
        below = {"models": {"dcgan": {"speedup_vs_scalar": 1.0}}}
        better = {"models": {"dcgan": {"speedup_vs_scalar": 3.0}}}
        assert check_wallclock_regression(baseline, same) == []
        assert check_wallclock_regression(baseline, within, band=0.25) == []
        assert check_wallclock_regression(baseline, better) == []
        problems = check_wallclock_regression(baseline, below, band=0.25)
        assert problems and "dcgan" in problems[0]

    def test_wallclock_gate_reports_missing_models(self):
        from repro.harness.bench import check_wallclock_regression

        baseline = {"models": {"dcgan": {"speedup_vs_scalar": 2.0}}}
        current = {"models": {"lstm": {"speedup_vs_scalar": 2.0}}}
        problems = check_wallclock_regression(baseline, current)
        assert len(problems) == 2

    def test_wallclock_gate_rejects_negative_band(self):
        from repro.harness.bench import check_wallclock_regression

        with pytest.raises(ValueError):
            check_wallclock_regression({}, {}, band=-0.1)
