"""Parallel sweep runner: deterministic merge, cross-process seeds, edges.

``sweep(..., workers=N)`` distributes grid points over a multiprocessing
pool; its contract is that the merged :class:`SweepResult` is byte-identical
to the serial run no matter how the pool schedules points.  The property
test drives real pools over randomly drawn sub-grids; the subprocess tests
pin :func:`point_seed` against ``PYTHONHASHSEED`` (grid seeds must not
depend on interpreter hash randomization, or worker processes would
disagree with the parent).
"""

import dataclasses
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosConfig
from repro.harness.sweeps import (
    SweepPoint,
    _enumerate_grid,
    _run_point,
    point_seed,
    sweep,
)
from repro.mem.platforms import OPTANE_HM


def point_reprs(result):
    return [repr(point) for point in result.points]


class TestParallelMerge:
    @pytest.fixture(scope="class")
    def serial(self):
        return sweep(
            policies=("sentinel", "slow-only"),
            models=("dcgan",),
            fast_fractions=(0.2, 0.4),
        )

    def test_workers_two_byte_identical(self, serial):
        parallel = sweep(
            policies=("sentinel", "slow-only"),
            models=("dcgan",),
            fast_fractions=(0.2, 0.4),
            workers=2,
        )
        assert point_reprs(parallel) == point_reprs(serial)

    def test_workers_one_is_serial(self, serial):
        explicit = sweep(
            policies=("sentinel", "slow-only"),
            models=("dcgan",),
            fast_fractions=(0.2, 0.4),
            workers=1,
        )
        assert point_reprs(explicit) == point_reprs(serial)

    def test_more_workers_than_points(self, serial):
        oversubscribed = sweep(
            policies=("sentinel", "slow-only"),
            models=("dcgan",),
            fast_fractions=(0.2, 0.4),
            workers=16,
        )
        assert point_reprs(oversubscribed) == point_reprs(serial)

    # Real pools, randomly drawn sub-grids: completion order is up to the
    # OS scheduler, the merged result must not be.  max_examples is small
    # because every example runs the grid twice end to end.
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        policies=st.permutations(["slow-only", "sentinel", "first-touch"]).map(
            lambda p: tuple(p[: 1 + len(p) % 2 + 1])
        ),
        fractions=st.sampled_from([(0.2,), (0.3,), (0.2, 0.4)]),
        workers=st.integers(min_value=1, max_value=3),
    )
    def test_merge_is_completion_order_independent(
        self, policies, fractions, workers
    ):
        serial = sweep(policies, ("dcgan",), fast_fractions=fractions)
        parallel = sweep(
            policies, ("dcgan",), fast_fractions=fractions, workers=workers
        )
        assert point_reprs(parallel) == point_reprs(serial)


class TestChaosUnderWorkers:
    def test_fault_sequence_unchanged_by_parallelism(self):
        # Each point's injector is reseeded from the point's own
        # coordinates before any process runs, so the fault sequence (and
        # with it the extras counters) must not care which process ran it.
        chaos = ChaosConfig.uniform(0.2, seed=7)
        kwargs = dict(
            policies=("sentinel",),
            models=("dcgan", "lstm"),
            fast_fractions=(0.3,),
            chaos=chaos,
        )
        serial = sweep(**kwargs)
        parallel = sweep(workers=2, **kwargs)
        assert point_reprs(parallel) == point_reprs(serial)
        for a, b in zip(serial.points, parallel.points):
            assert dataclasses.asdict(a.metrics) == dataclasses.asdict(b.metrics)


class TestGridEnumeration:
    def test_specs_are_indexed_in_serial_order(self):
        specs = _enumerate_grid(
            ("sentinel", "slow-only"), ("dcgan", "lstm"), (0.2, 0.4),
            None, OPTANE_HM, None, False, None,
        )
        assert [spec.index for spec in specs] == list(range(len(specs)))
        # slow-only is fraction-independent: one point per model.
        assert sum(spec.policy == "slow-only" for spec in specs) == 2

    def test_run_point_matches_sweep_point(self):
        specs = _enumerate_grid(
            ("slow-only",), ("dcgan",), (0.2,),
            None, OPTANE_HM, None, False, None,
        )
        point = _run_point(specs[0])
        grid = sweep(("slow-only",), ("dcgan",))
        assert repr(point) == repr(grid.points[0])


class TestPointSeedCrossProcess:
    def seed_in_subprocess(self, hashseed):
        code = (
            "from repro.harness.sweeps import point_seed;"
            "print(point_seed(1234, 'sentinel', 'dcgan', None, 0.2))"
        )
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ])
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        return int(out.stdout.strip())

    def test_stable_across_hash_randomization(self):
        # str.__hash__ varies per interpreter under PYTHONHASHSEED; the
        # CRC-32 derivation must not.
        seeds = {self.seed_in_subprocess(h) for h in ("0", "1", "42")}
        assert len(seeds) == 1
        assert seeds.pop() == point_seed(1234, "sentinel", "dcgan", None, 0.2)

    def test_distinct_points_distinct_seeds(self):
        a = point_seed(1234, "sentinel", "dcgan", None, 0.2)
        b = point_seed(1234, "sentinel", "dcgan", None, 0.4)
        c = point_seed(1234, "sentinel", "lstm", None, 0.2)
        assert len({a, b, c}) == 3


class TestSweepEdgeCases:
    def test_empty_policies_raises(self):
        with pytest.raises(ValueError):
            sweep((), ("dcgan",))

    def test_empty_models_raises(self):
        with pytest.raises(ValueError):
            sweep(("sentinel",), ())

    def test_empty_fractions_raises(self):
        with pytest.raises(ValueError):
            sweep(("sentinel",), ("dcgan",), fast_fractions=())

    def test_zero_workers_raises(self):
        with pytest.raises(ValueError):
            sweep(("sentinel",), ("dcgan",), workers=0)

    def test_where_unknown_attribute_raises(self):
        grid = sweep(("slow-only",), ("dcgan",))
        with pytest.raises(AttributeError, match="modle"):
            grid.where(modle="dcgan")
        assert grid.where(model="dcgan")

    def test_best_policy_tie_breaks_lexicographically(self):
        # Two policies, identical step time: the winner must not depend on
        # grid enumeration order.
        metrics = sweep(("slow-only",), ("dcgan",)).points[0].metrics
        tied = [
            SweepPoint("zeta", "dcgan", None, None, metrics),
            SweepPoint("alpha", "dcgan", None, None, metrics),
        ]
        from repro.harness.sweeps import SweepResult

        assert SweepResult(points=tied).best_policy("dcgan") == "alpha"
        assert SweepResult(points=tied[::-1]).best_policy("dcgan") == "alpha"


class TestExperimentWorkers:
    """fig7/fig10 ride the same pool: workers>1 is byte-identical."""

    def test_fig7_workers_byte_identical(self):
        from repro.harness.experiments import fig7_speedup

        serial = fig7_speedup(models=("dcgan",), workers=1)
        pooled = fig7_speedup(models=("dcgan",), workers=2)
        assert pooled == serial

    def test_fig10_workers_byte_identical(self):
        from repro.harness.experiments import fig10_sensitivity

        serial = fig10_sensitivity(
            models=("dcgan",), fractions=(0.2, 0.4), workers=1
        )
        pooled = fig10_sensitivity(
            models=("dcgan",), fractions=(0.2, 0.4), workers=2
        )
        assert pooled == serial
