"""Tournament harness: schema, byte-stable artifacts, pooled determinism,
and the feedback controller's headline win.

Tournaments are the acceptance surface for the admission layer: a ranked
leaderboard over {model x policy x admission x governor} whose JSON
artifact must be byte-identical across reruns (and across worker counts),
and in which the feedback controller must actually *win* at least one
constrained-memory cell by cutting the migration-stall share.
"""

import json

import pytest

from repro.harness.tournament import (
    DEFAULT_ADMISSIONS,
    TOURNAMENT_SCHEMA,
    _enumerate_cells,
    format_leaderboard,
    run_tournament,
    tournament_json,
)
from repro.mem.platforms import OPTANE_HM


@pytest.fixture(scope="module")
def small():
    """One dcgan x {sentinel, ial} x all controllers grid, governor off."""
    return run_tournament(
        models=("dcgan",),
        policies=("sentinel", "ial"),
        governors=(False,),
        fast_fraction=0.2,
    )


class TestArtifact:
    def test_schema_and_config(self, small):
        assert small["schema"] == TOURNAMENT_SCHEMA
        assert small["config"]["models"] == ["dcgan"]
        assert small["config"]["platform"] == OPTANE_HM.name
        assert small["config"]["admissions"] == list(DEFAULT_ADMISSIONS)

    def test_baselines_anchor_slowdown(self, small):
        baseline = small["baselines"]["dcgan"]
        assert baseline > 0
        for cell in small["cells"]:
            if cell["failure"] is None:
                assert cell["slowdown"] == pytest.approx(
                    cell["step_time"] / baseline
                )

    def test_every_combo_has_a_cell(self, small):
        combos = {
            (c["policy"], c["admission"], c["governor"])
            for c in small["cells"]
        }
        assert len(combos) == 2 * len(DEFAULT_ADMISSIONS)

    def test_cells_carry_admission_counters(self, small):
        for cell in small["cells"]:
            if cell["failure"] is None:
                assert "admission.admitted" in cell["admission_counters"]

    def test_leaderboard_is_ranked_and_sorted(self, small):
        board = small["leaderboard"]
        assert [e["rank"] for e in board] == list(range(1, len(board) + 1))
        slowdowns = [e["mean_slowdown"] for e in board]
        assert slowdowns == sorted(slowdowns)

    def test_json_is_byte_stable_across_reruns(self, small):
        rerun = run_tournament(
            models=("dcgan",),
            policies=("sentinel", "ial"),
            governors=(False,),
            fast_fraction=0.2,
        )
        assert tournament_json(rerun) == tournament_json(small)

    def test_json_round_trips(self, small):
        assert json.loads(tournament_json(small)) == small

    def test_format_leaderboard_lists_every_entry(self, small):
        text = format_leaderboard(small)
        assert "tournament leaderboard" in text
        for entry in small["leaderboard"]:
            assert entry["admission"] in text


class TestPooledDeterminism:
    def test_workers_byte_identical(self, small):
        pooled = run_tournament(
            models=("dcgan",),
            policies=("sentinel", "ial"),
            governors=(False,),
            fast_fraction=0.2,
            workers=3,
        )
        assert tournament_json(pooled) == tournament_json(small)


class TestEnumeration:
    def test_baselines_first_then_grid_in_serial_order(self):
        specs = _enumerate_cells(
            ("dcgan", "lstm"), ("sentinel",), ("always", "feedback"),
            (False, True), 0.2, OPTANE_HM, None,
        )
        assert [s.index for s in specs] == list(range(len(specs)))
        assert [s.policy for s in specs[:2]] == ["fast-only", "fast-only"]
        assert all(s.admission is None for s in specs[:2])
        assert all(s.admission is not None for s in specs[2:])
        assert len(specs) == 2 + 2 * 1 * 2 * 2

    def test_admission_args_reach_only_their_controller(self):
        specs = _enumerate_cells(
            ("dcgan",), ("sentinel",), ("always", "feedback"), (False,),
            0.2, OPTANE_HM, {"feedback": {"stall_target": 0.02}},
        )
        by_admission = {s.admission: s for s in specs if s.admission}
        assert by_admission["feedback"].admission_args == {"stall_target": 0.02}
        assert by_admission["always"].admission_args is None


class TestValidation:
    def test_empty_axis_raises(self):
        with pytest.raises(ValueError):
            run_tournament(models=())

    def test_zero_workers_raises(self):
        with pytest.raises(ValueError):
            run_tournament(models=("dcgan",), workers=0)

    def test_non_bool_governor_raises(self):
        with pytest.raises(ValueError):
            run_tournament(models=("dcgan",), governors=("on",))


class TestFeedbackWins:
    def test_feedback_cuts_stall_share_under_constrained_fast(self):
        # The acceptance cell: at fast_fraction=0.1 the always-admit run
        # spends a visible share of each resnet32 step stalled on
        # migration; the feedback controller's stall-share throttle must
        # beat it, not merely tie.
        result = run_tournament(
            models=("resnet32",),
            policies=("sentinel",),
            admissions=("always", "feedback"),
            governors=(False,),
            fast_fraction=0.1,
        )
        by_admission = {
            cell["admission"]: cell
            for cell in result["cells"]
            if cell["failure"] is None
        }
        always = by_admission["always"]
        feedback = by_admission["feedback"]
        assert always["stall_share"] > 0.0
        assert feedback["stall_share"] < always["stall_share"]
        # Less admitted traffic is *how* it wins, not a side effect.
        assert feedback["migrated_bytes"] < always["migrated_bytes"]


class TestExperimentWorkers:
    """The remaining serial experiments ride the shared pool helper."""

    def test_fig5_workers_byte_identical(self):
        from repro.harness.experiments import fig5_interval_sweep

        serial = fig5_interval_sweep(model="dcgan", lengths=(1, 2, 3))
        pooled = fig5_interval_sweep(model="dcgan", lengths=(1, 2, 3), workers=2)
        assert pooled == serial

    def test_table4_workers_byte_identical(self):
        from repro.harness.experiments import table4_migrated

        serial = table4_migrated(models=("dcgan",))
        pooled = table4_migrated(models=("dcgan",), workers=2)
        assert pooled == serial
