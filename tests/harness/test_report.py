"""Report rendering."""

import pytest

from repro.harness.report import (
    format_bars,
    format_pressure,
    format_series,
    format_summary,
    format_table,
    gib,
    jsonable,
    mib,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ("model", "speedup"),
            [("resnet32", 2.214), ("lstm", 1.0)],
            title="Figure 7",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure 7"
        assert "model" in lines[1] and "speedup" in lines[1]
        assert "2.214" in text
        # All rows align to the same column positions.
        assert lines[3].index("|") == lines[4].index("|")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_float_formatting(self):
        text = format_table(("x",), [(0.123456789,)])
        assert "0.1235" in text


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series("fig5", [(1, 0.5), (2, 0.25)], unit="s")
        assert "fig5 (s):" in text
        assert "-> 0.5" in text


class TestFormatBars:
    def test_bars_scale_to_peak(self):
        text = format_bars("f", [("a", 1.0), ("b", 0.5)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_empty_series(self):
        assert "(no data)" in format_bars("f", [])

    def test_zero_peak(self):
        text = format_bars("f", [("a", 0.0)])
        assert "# " not in text


class TestJsonable:
    def test_dataclass_and_tuple_conversion(self):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int
            y: float

        out = jsonable({"p": Point(1, 2.0), "t": (1, 2), 3: None})
        assert out == {"p": {"x": 1, "y": 2.0}, "t": [1, 2], "3": None}

    def test_exotic_objects_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert jsonable(Weird()) == "<weird>"

    def test_roundtrips_through_json(self):
        import json

        from repro.harness.runner import RunMetrics

        metrics = RunMetrics(
            model="m", policy="p", batch_size=1, fast_capacity=2,
            step_time=0.5, throughput=2.0, compute_time=0.1, mem_time=0.2,
            stall_time=0.0, fault_time=0.0, promoted_bytes=0, demoted_bytes=0,
            bytes_fast=0, bytes_slow=0, peak_fast=0, peak_slow=0,
        )
        text = json.dumps(jsonable({"metrics": metrics}))
        assert json.loads(text)["metrics"]["step_time"] == 0.5


class TestUnits:
    def test_conversions(self):
        assert mib(1024**2) == 1.0
        assert gib(1024**3) == 1.0


class TestFormatTraceSummary:
    def test_renders_per_category_rows(self):
        from repro.harness.report import format_trace_summary
        from repro.obs import EventTracer

        tracer = EventTracer()
        tracer.begin("step", "step", ts=0.0)
        tracer.end("step", "step", ts=1.0)
        tracer.complete("xfer", "channel", ts=0.0, dur=0.5, track="promote",
                        nbytes=2 * 1024 * 1024)
        text = format_trace_summary(tracer.events, title="unit")
        assert "unit" in text
        assert "channel" in text and "step" in text
        assert "tracks: main, promote" in text

    def test_empty_trace(self):
        from repro.harness.report import format_trace_summary

        assert "(no events)" in format_trace_summary([])

    def test_dropped_events_append_truncation_warning(self):
        from repro.harness.report import format_trace_summary
        from repro.obs import EventTracer

        tracer = EventTracer()
        tracer.instant("mark", "chaos", ts=0.0)
        text = format_trace_summary(tracer.events, dropped=7)
        assert "WARNING: ring buffer dropped 7 events" in text
        assert "window truncated" in text
        assert "attribution may be partial" in text
        clean = format_trace_summary(tracer.events, dropped=0)
        assert "WARNING" not in clean


class TestFormatAttribution:
    def build(self):
        from repro.obs.critpath import Attribution, StepAttribution

        steps = tuple(
            StepAttribution(
                step=index,
                start=float(index) * 4.0,
                end=float(index) * 4.0 + 4.0,
                compute=3.0,
                migration_stall=0.5,
                channel_contention=0.25,
                fault=0.125,
                pressure_reclaim=0.0,
                idle=0.125,
            )
            for index in range(3)
        )
        return Attribution(steps=steps)

    def test_rows_totals_and_what_ifs(self):
        from repro.harness.report import format_attribution

        text = format_attribution(self.build(), title="unit attribution")
        assert "unit attribution" in text
        for header in ("compute", "mig stall", "contention", "reclaim", "idle"):
            assert header in text
        assert "total" in text
        assert "median step time        = 4.0000 s" in text
        # stall = 0.75 per step; free migration and 2x bandwidth bounds.
        assert "what-if free migration  = 3.2500 s" in text
        assert "what-if 2x bandwidth    = 3.6250 s" in text
        assert "speedup" in text

    def test_empty_attribution_renders_headers_only(self):
        from repro.harness.report import format_attribution
        from repro.obs.critpath import Attribution

        text = format_attribution(Attribution(steps=()))
        assert "what-if" not in text


class TestFormatPressure:
    def test_all_headline_rows_present_even_when_zero(self):
        text = format_pressure({})
        for label in (
            "spills",
            "refused promotions",
            "reclaims",
            "compaction moves",
            "high-watermark crossings",
        ):
            assert label in text
        assert text.count("= 0") >= 5

    def test_bytes_render_as_mib(self):
        text = format_pressure(
            {"pressure.spills": 3.0, "pressure.spilled_bytes": 2 * 1024.0**2}
        )
        assert "spills" in text
        assert "2 MiB" in text

    def test_ignores_unrelated_extras(self):
        text = format_pressure({"interval_length": 4.0, "pressure.spills": 1.0})
        assert "interval_length" not in text


class TestFormatSummary:
    def _metrics(self, extras):
        from repro.harness.runner import RunMetrics

        return RunMetrics(
            model="dcgan",
            policy="sentinel",
            batch_size=8,
            fast_capacity=1 << 30,
            step_time=1.5,
            throughput=5.33,
            compute_time=1.0,
            mem_time=0.4,
            stall_time=0.1,
            fault_time=0.0,
            promoted_bytes=1 << 20,
            demoted_bytes=1 << 20,
            bytes_fast=0,
            bytes_slow=0,
            peak_fast=1 << 28,
            peak_slow=1 << 29,
            extras=extras,
        )

    def test_pressure_section_only_with_governor_extras(self):
        bare = format_summary(self._metrics({}))
        assert "pressure:" not in bare
        governed = format_summary(self._metrics({"pressure.spills": 2.0}))
        assert "pressure:" in governed
        assert "step time (s)" in governed
