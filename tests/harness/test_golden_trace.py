"""Golden-trace snapshots: the event stream is part of the contract.

A structured trace is only trustworthy if replaying the same run
reproduces it byte for byte; these tests pin the canonical JSONL digest of
a small end-to-end run against a checked-in golden value, so any change to
event ordering, naming, payloads, or the simulation itself shows up as a
digest mismatch rather than silently shifting what traces mean.

To refresh the golden after an intentional change::

    PYTHONPATH=src python - <<'EOF'
    from repro.harness.runner import run_policy
    from repro.obs import EventTracer, canonical_digest
    tracer = EventTracer()
    run_policy("sentinel", model="dcgan", fast_fraction=0.2, tracer=tracer)
    print(canonical_digest(tracer.events))
    EOF
"""

from pathlib import Path

import pytest

from repro import accel
from repro.chaos import ChaosConfig
from repro.harness.runner import run_policy
from repro.obs import EventTracer, canonical_digest, to_jsonl

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

MODEL = "dcgan"


def traced_run(chaos=None, seed=99):
    tracer = EventTracer()
    config = None if chaos is None else ChaosConfig.uniform(chaos, seed=seed)
    run_policy(
        "sentinel", model=MODEL, fast_fraction=0.2, chaos=config, tracer=tracer
    )
    return tracer.events


class TestGoldenTrace:
    def test_trace_matches_checked_in_golden(self):
        golden = (GOLDEN_DIR / "dcgan_sentinel_trace.sha256").read_text().strip()
        assert canonical_digest(traced_run()) == golden

    def test_replay_is_byte_identical(self):
        first = traced_run()
        second = traced_run()
        assert to_jsonl(first) == to_jsonl(second)

    def test_chaos_replay_is_byte_identical(self):
        first = traced_run(chaos=0.2, seed=99)
        second = traced_run(chaos=0.2, seed=99)
        assert to_jsonl(first) == to_jsonl(second)

    def test_different_chaos_seed_changes_the_trace(self):
        assert canonical_digest(traced_run(chaos=0.2, seed=99)) != canonical_digest(
            traced_run(chaos=0.2, seed=100)
        )

    def test_chaos_changes_the_trace_but_not_its_determinism(self):
        assert canonical_digest(traced_run()) != canonical_digest(
            traced_run(chaos=0.2, seed=99)
        )

    def test_metrics_registry_never_perturbs_the_trace(self):
        # The detailed metrics sites are observation only: attaching a
        # registry must leave the simulated timeline — and therefore the
        # golden digest — byte-identical to an un-metered run.
        from repro.obs import EventTracer, MetricsRegistry

        golden = (GOLDEN_DIR / "dcgan_sentinel_trace.sha256").read_text().strip()
        tracer = EventTracer()
        registry = MetricsRegistry()
        run_policy(
            "sentinel",
            model=MODEL,
            fast_fraction=0.2,
            tracer=tracer,
            metrics=registry,
        )
        assert canonical_digest(tracer.events) == golden
        # ...while the registry itself saw the run in detail.
        assert registry.histogram("executor.step_time").count > 0
        assert registry.counter("migration.promoted_bytes").value > 0


class TestAdmissionByteIdentity:
    """`AlwaysAdmit` is contractually byte-identical to no controller.

    The zoo-wide differential pins the admission gate's disabled/default
    contract on both accounting paths: a run with ``admission="always"``
    must reproduce the exact trace digest of an admission-unset run — the
    gate admits everything, consumes no randomness, and emits trace
    events only on deny/defer.  dcgan is additionally anchored to the
    checked-in golden digest, so the gate cannot drift together with the
    baseline.
    """

    ZOO = (
        ("sentinel", "dcgan", 0.2),
        ("sentinel", "lstm", 0.4),
        ("ial", "mobilenet", 0.3),
        ("autotm", "resnet32", 0.4),
    )

    def digest(self, policy, model, fraction, admission, scalar, **args):
        tracer = EventTracer()
        with accel.scalar_path(scalar):
            run_policy(
                policy,
                model=model,
                fast_fraction=fraction,
                tracer=tracer,
                admission=admission,
                admission_args=args or None,
            )
        return canonical_digest(tracer.events)

    @pytest.mark.parametrize("scalar", (False, True), ids=("vec", "scalar"))
    @pytest.mark.parametrize("policy,model,fraction", ZOO)
    def test_always_admit_matches_unset(self, policy, model, fraction, scalar):
        unset = self.digest(policy, model, fraction, None, scalar)
        always = self.digest(policy, model, fraction, "always", scalar)
        assert always == unset

    @pytest.mark.parametrize("scalar", (False, True), ids=("vec", "scalar"))
    def test_always_admit_matches_checked_in_golden(self, scalar):
        golden = (GOLDEN_DIR / "dcgan_sentinel_trace.sha256").read_text().strip()
        assert self.digest("sentinel", MODEL, 0.2, "always", scalar) == golden

    def test_active_controller_changes_the_run(self):
        # Sanity check on the differential's power: a controller that
        # actually denies migrations must move the digest.
        unset = self.digest("sentinel", MODEL, 0.2, None, False)
        feedback = self.digest(
            "sentinel", MODEL, 0.2, "feedback", False, stall_target=0.01
        )
        assert feedback != unset
