"""Experiment functions: structure and rendering (reduced scopes).

The benchmarks run the full configurations; these tests exercise each
experiment's machinery on small subsets so regressions in the experiment
plumbing surface quickly in the unit suite.
"""

import pytest

from repro.harness import experiments as E


class TestCharacterization:
    def test_returns_all_sections(self):
        result = E.characterization(model="dcgan", batch_size=16)
        for key in (
            "short_fraction",
            "small_of_short",
            "hot_count",
            "false_sharing",
            "profile",
            "text",
        ):
            assert key in result
        assert "Characterization" in result["text"]

    def test_false_sharing_invariant(self):
        result = E.characterization(model="dcgan", batch_size=16)
        fs = result["false_sharing"]
        assert fs["page_cold_bytes"] <= fs["tensor_cold_bytes"]
        assert fs["misclassified_bytes"] == max(
            0, fs["tensor_cold_bytes"] - fs["page_cold_bytes"]
        )


class TestCPUExperiments:
    def test_table3_subset(self):
        result = E.table3_models(models=("dcgan",))
        assert len(result["records"]) == 1
        record = result["records"][0]
        assert record["profiling_steps"] == 1
        assert "Table III" in result["text"]

    def test_fig5_sweep_points(self):
        result = E.fig5_interval_sweep(model="dcgan", lengths=(1, 2, 4))
        assert [x for x, _ in result["points"]] == [1, 2, 4]
        assert result["best"][0] in (1, 2, 4)
        assert result["variance"] >= 0

    def test_fig7_subset_structure(self):
        result = E.fig7_speedup(models=("dcgan",))
        row = result["records"]["dcgan"]
        assert set(row) >= {"slow_time", "fast_time", "ial", "autotm", "sentinel"}
        assert row["fast_time"] < row["slow_time"]

    def test_table4_subset(self):
        result = E.table4_migrated(models=("dcgan",))
        assert result["records"]["dcgan"]["sentinel"] > 0

    def test_fig9_records(self):
        result = E.fig9_bandwidth(model="dcgan")
        assert result["fast_ratio"] > 0
        for policy in ("ial", "sentinel"):
            assert result["records"][policy]["fast_bw"] >= 0

    def test_fig10_subset(self):
        result = E.fig10_sensitivity(models=("dcgan",), fractions=(0.3, 0.6))
        series = result["records"]["dcgan"]
        assert [f for f, _ in series] == [0.3, 0.6]

    def test_fig11_subset(self):
        result = E.fig11_resnet_scaling(depths=(20,), batch_size=128)
        record = result["records"][0]
        assert 0 < record["min_fast_bytes"] <= record["peak_bytes"]


class TestGPUExperiments:
    def test_fig12_subset(self):
        result = E.fig12_gpu_throughput(
            models=("dcgan",), batches={"dcgan": (256,)}
        )
        row = result["records"][("dcgan", 256)]
        assert row["sentinel-gpu"] is not None
        assert row["unified-memory"] is not None

    def test_fig13_subset(self):
        result = E.fig13_breakdown(models=("resnet200",))
        per_model = result["records"]["resnet200"]
        assert "sentinel (all)" in per_model
        breakdown = per_model["sentinel (all)"]
        assert breakdown["step_time"] > 0
        assert breakdown["recompute"] == 0.0


class TestConstants:
    def test_gpu_batches_cover_gpu_models(self):
        assert set(E.GPU_MODELS) == set(E.GPU_BATCHES)
        for batches in E.GPU_BATCHES.values():
            assert list(batches) == sorted(batches)

    def test_cpu_model_sets_are_registered(self):
        from repro.models import MODELS

        for name in E.CPU_SMALL_MODELS + E.CPU_LARGE_MODELS:
            assert name in MODELS
