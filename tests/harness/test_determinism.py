"""Determinism regression: same seed, same report — bit for bit.

Fault injection only earns its keep if a failing run can be replayed
exactly; these tests pin down seed-to-output stability, grid-order
independence, and the pay-for-what-you-use guarantee that a zero-rate
injector changes nothing.
"""

import dataclasses
import json

from repro.chaos import ChaosConfig
from repro.harness import experiments
from repro.harness.report import jsonable
from repro.harness.runner import run_policy
from repro.harness.sweeps import point_seed, sweep

MODEL = "dcgan"

#: Extras keys that exist only when an injector is attached; stripped when
#: comparing a chaos-at-rate-zero run against a chaos-free run.
CHAOS_ONLY_EXTRAS = (
    "reprofile_steps",
    "case3_fallbacks",
    "migration_retries",
    "busy_fallbacks",
    "aborted_bytes",
    "faults_dropped",
)


def metrics_dict(metrics):
    return dataclasses.asdict(metrics)


class TestRunDeterminism:
    def test_same_chaos_seed_same_metrics(self):
        chaos = ChaosConfig.uniform(0.2, seed=77)
        first = run_policy("sentinel", model=MODEL, fast_fraction=0.2, chaos=chaos)
        second = run_policy("sentinel", model=MODEL, fast_fraction=0.2, chaos=chaos)
        assert metrics_dict(first) == metrics_dict(second)

    def test_rate_zero_injector_is_bit_identical_to_none(self):
        clean = run_policy("sentinel", model=MODEL, fast_fraction=0.2)
        chaotic = run_policy(
            "sentinel",
            model=MODEL,
            fast_fraction=0.2,
            chaos=ChaosConfig.uniform(0.0, seed=123),
        )
        stripped = metrics_dict(chaotic)
        for key in CHAOS_ONLY_EXTRAS:
            assert stripped["extras"].pop(key, 0) == 0
        assert metrics_dict(clean) == stripped

    def test_audit_does_not_change_metrics(self):
        plain = run_policy("sentinel", model=MODEL, fast_fraction=0.2)
        audited = run_policy("sentinel", model=MODEL, fast_fraction=0.2, audit=True)
        assert metrics_dict(plain) == metrics_dict(audited)


class TestPointSeed:
    def test_stable_value(self):
        # CRC-32 of the key material: process-independent by construction;
        # a changed value would silently re-roll every sweep's faults.
        assert point_seed(1, "sentinel", MODEL, None, 0.2) == point_seed(
            1, "sentinel", MODEL, None, 0.2
        )
        assert point_seed(1, "a") != point_seed(2, "a")
        assert point_seed(1, "a") != point_seed(1, "b")


class TestSweepDeterminism:
    def test_grid_order_does_not_change_a_points_faults(self):
        chaos = ChaosConfig.uniform(0.2, seed=9)
        forward = sweep(["sentinel", "ial"], [MODEL], chaos=chaos)
        backward = sweep(["ial", "sentinel"], [MODEL], chaos=chaos)
        for point in forward:
            twin = next(
                p
                for p in backward
                if p.policy == point.policy and p.model == point.model
            )
            assert metrics_dict(point.metrics) == metrics_dict(twin.metrics)


class TestExperimentDeterminism:
    def test_robustness_report_json_is_reproducible(self):
        kwargs = dict(
            model=MODEL,
            policies=("sentinel",),
            fault_rates=(0.0, 0.1),
            chaos_seed=4321,
        )
        first = experiments.robustness_degradation(**kwargs)
        second = experiments.robustness_degradation(**kwargs)
        assert json.dumps(jsonable(first), sort_keys=True) == json.dumps(
            jsonable(second), sort_keys=True
        )


class TestTracingZeroOverhead:
    """Attaching a tracer observes the run; it must never steer it."""

    def test_traced_metrics_equal_untraced_metrics(self):
        from repro.obs import EventTracer

        plain = run_policy("sentinel", model=MODEL, fast_fraction=0.2)
        traced = run_policy(
            "sentinel", model=MODEL, fast_fraction=0.2, tracer=EventTracer()
        )
        assert metrics_dict(plain) == metrics_dict(traced)

    def test_traced_metrics_equal_untraced_metrics_under_chaos(self):
        from repro.obs import EventTracer

        chaos = ChaosConfig.uniform(0.2, seed=31)
        plain = run_policy("sentinel", model=MODEL, fast_fraction=0.2, chaos=chaos)
        traced = run_policy(
            "sentinel",
            model=MODEL,
            fast_fraction=0.2,
            chaos=chaos,
            tracer=EventTracer(),
        )
        assert metrics_dict(plain) == metrics_dict(traced)

    def test_sweep_with_trace_capture_matches_untraced_sweep(self):
        untraced = sweep(["sentinel"], [MODEL])
        traced = sweep(["sentinel"], [MODEL], trace=True)
        for plain, captured in zip(untraced, traced):
            assert metrics_dict(plain.metrics) == metrics_dict(captured.metrics)
            assert plain.events is None
            assert captured.events  # the trace actually landed on the point
