"""Experiment runner and max-batch search."""

import pytest

from repro.core.runtime import SentinelConfig
from repro.harness.runner import RunMetrics, batch_feasible, max_batch_size, run_policy
from repro.mem.platforms import GPU_HM, OPTANE_HM
from repro.models import build_model


class TestRunPolicy:
    def test_requires_exactly_one_workload_spec(self):
        with pytest.raises(ValueError):
            run_policy("slow-only")
        with pytest.raises(ValueError):
            run_policy(
                "slow-only", model="lstm", graph=build_model("lstm", batch_size=4)
            )

    def test_basic_metrics_populated(self):
        metrics = run_policy("slow-only", model="lstm", batch_size=8)
        assert metrics.model == "lstm"
        assert metrics.batch_size == 8
        assert metrics.step_time > 0
        assert metrics.throughput == pytest.approx(8 / metrics.step_time)

    def test_fast_fraction_sizes_machine(self):
        graph = build_model("resnet32", batch_size=64)
        peak = graph.peak_memory_bytes()
        metrics = run_policy("sentinel", model="resnet32", batch_size=64, fast_fraction=0.2)
        assert metrics.fast_capacity == pytest.approx(peak * 0.2, rel=0.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            run_policy("slow-only", model="lstm", batch_size=4, fast_fraction=0.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_policy("magic", model="lstm", batch_size=4)

    def test_sentinel_extras_reported(self):
        metrics = run_policy(
            "sentinel", model="resnet32", batch_size=64, fast_fraction=0.3
        )
        assert metrics.extras["profiling_steps"] == 1
        assert "interval_length" in metrics.extras
        assert "memory_overhead" in metrics.extras

    def test_capuchin_reports_recompute(self):
        metrics = run_policy(
            "capuchin",
            model="dcgan",
            batch_size=512,
            platform=GPU_HM,
        )
        assert "recompute_time" in metrics.extras

    def test_deterministic(self):
        a = run_policy("sentinel", model="lstm", batch_size=16, fast_fraction=0.3)
        b = run_policy("sentinel", model="lstm", batch_size=16, fast_fraction=0.3)
        assert a.step_time == b.step_time
        assert a.migrated_bytes == b.migrated_bytes


class TestMaxBatch:
    def test_feasibility_probe(self):
        small_gpu = GPU_HM.with_fast_capacity(1 * 1024**3)
        assert batch_feasible("sentinel-gpu", "dcgan", 4, small_gpu)
        assert not batch_feasible("fast-only", "dcgan", 4096, small_gpu)

    def test_sentinel_reaches_larger_batch_than_plain(self):
        small_gpu = GPU_HM.with_fast_capacity(2 * 1024**3)
        plain = max_batch_size("fast-only", "dcgan", small_gpu, limit=4096)
        sentinel = max_batch_size("sentinel-gpu", "dcgan", small_gpu, limit=4096)
        assert sentinel > plain >= 1

    def test_zero_when_start_infeasible(self):
        tiny = GPU_HM.with_fast_capacity(16 * 4096)
        assert max_batch_size("fast-only", "dcgan", tiny, limit=64) == 0

    def test_result_is_boundary(self):
        small_gpu = GPU_HM.with_fast_capacity(2 * 1024**3)
        best = max_batch_size("fast-only", "dcgan", small_gpu, limit=4096)
        assert batch_feasible("fast-only", "dcgan", best, small_gpu)
        assert not batch_feasible("fast-only", "dcgan", best + 1, small_gpu)
