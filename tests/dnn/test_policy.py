"""Base placement policy: pricing, residency, initialized-materialize."""

import pytest

from repro.dnn.alloc import PageAlignedAllocator
from repro.dnn.ops import TensorAccess
from repro.dnn.policy import AccessCharge, PlacementPolicy, ResidencyError
from repro.dnn.graph import GraphBuilder
from repro.dnn.tensor import Tensor, TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM


def tiny_graph():
    b = GraphBuilder("tiny", batch_size=1)
    w = b.weight("w", 4096)
    with b.layer("l0"):
        out = b.tensor("out", 4096)
        b.op("f", flops=1.0, reads=[w], writes=[out])
    return b.finish()


def bound_policy(platform=OPTANE_HM, fast_capacity=None):
    machine = Machine.for_platform(platform, fast_capacity=fast_capacity)
    policy = PlacementPolicy()
    policy.bind(machine, tiny_graph())
    allocator = PageAlignedAllocator(machine, policy.place)
    return machine, policy, allocator


def step_tensor(tid, nbytes):
    tensor = Tensor(tid=tid, name=f"t{tid}", nbytes=nbytes, kind=TensorKind.ACTIVATION)
    tensor.alloc_layer = 0
    tensor.free_layer = 0
    return tensor


class TestBind:
    def test_residency_inherited_from_platform(self):
        _, cpu_policy, _ = bound_policy(OPTANE_HM)
        assert not cpu_policy.residency
        _, gpu_policy, _ = bound_policy(GPU_HM)
        assert gpu_policy.residency

    def test_residency_override(self):
        machine = Machine(GPU_HM)
        policy = PlacementPolicy()
        policy.requires_residency = False
        policy.bind(machine, tiny_graph())
        assert not policy.residency


class TestChargeAccess:
    def test_slow_access_priced_at_slow_speed(self):
        machine, policy, allocator = bound_policy()
        tensor = step_tensor(0, 1 << 20)
        mapping = allocator.alloc(tensor, now=0.0)
        access = TensorAccess(tensor, tensor.nbytes, is_write=False)
        charge = policy.charge_access(tensor, mapping, access, now=0.0)
        expected = machine.access_time(DeviceKind.SLOW, tensor.nbytes, False)
        assert charge.mem_time == pytest.approx(expected)
        assert charge.bytes_slow == tensor.nbytes
        assert charge.bytes_fast == 0

    def test_passes_multiply_time_and_bytes(self):
        machine, policy, allocator = bound_policy()
        tensor = step_tensor(0, 1 << 20)
        mapping = allocator.alloc(tensor, now=0.0)
        single = policy.charge_access(
            tensor, mapping, TensorAccess(tensor, tensor.nbytes, False), now=0.0
        )
        triple = policy.charge_access(
            tensor, mapping, TensorAccess(tensor, tensor.nbytes, False, passes=3), now=0.0
        )
        assert triple.mem_time == pytest.approx(3 * single.mem_time)
        assert triple.bytes_slow == 3 * single.bytes_slow

    def test_write_marks_initialized(self):
        machine, policy, allocator = bound_policy()
        tensor = step_tensor(0, 4096)
        mapping = allocator.alloc(tensor, now=0.0)
        run = mapping.shares[0].run
        assert not run.initialized
        policy.charge_access(
            tensor, mapping, TensorAccess(tensor, tensor.nbytes, True), now=0.0
        )
        assert run.initialized

    def test_poisoned_access_charged_faults(self):
        machine, policy, allocator = bound_policy()
        tensor = step_tensor(0, 4096 * 4)
        mapping = allocator.alloc(tensor, now=0.0)
        machine.page_table.poison_all()
        charge = policy.charge_access(
            tensor, mapping, TensorAccess(tensor, tensor.nbytes, False), now=0.0
        )
        assert charge.fault == pytest.approx(4 * machine.platform.fault_cost)

    def test_merge(self):
        a = AccessCharge(mem_time=1.0, stall=0.5, fault=0.1, bytes_fast=10, bytes_slow=20)
        b = AccessCharge(mem_time=2.0, bytes_fast=5)
        a.merge(b)
        assert a.mem_time == 3.0
        assert a.bytes_fast == 15
        assert a.bytes_slow == 20


class TestResidency:
    def test_gpu_access_promotes_and_stalls(self):
        machine, policy, allocator = bound_policy(GPU_HM)
        tensor = step_tensor(0, 1 << 20)
        mapping = allocator.alloc(tensor, now=0.0)
        run = mapping.shares[0].run
        run.initialized = True  # pretend it holds data from a prior step
        access = TensorAccess(tensor, tensor.nbytes, is_write=False)
        charge = policy.charge_access(tensor, mapping, access, now=0.0)
        assert charge.stall > 0
        assert run.device is DeviceKind.FAST
        # Priced at fast speed once resident.
        assert charge.bytes_fast == tensor.nbytes

    def test_uninitialized_buffer_materializes_without_transfer(self):
        machine, policy, allocator = bound_policy(GPU_HM)
        tensor = step_tensor(0, 1 << 20)
        mapping = allocator.alloc(tensor, now=0.0)
        access = TensorAccess(tensor, tensor.nbytes, is_write=True)
        charge = policy.charge_access(tensor, mapping, access, now=0.0)
        assert charge.stall == 0.0
        assert machine.demand_channel.bytes_moved == 0
        assert mapping.shares[0].run.device is DeviceKind.FAST

    def test_resident_run_costs_nothing_extra(self):
        machine, policy, allocator = bound_policy(GPU_HM)
        tensor = step_tensor(0, 4096)
        machine.fast.allocate(4096)
        run = machine.page_table.map_run(1, DeviceKind.FAST)
        assert policy.ensure_resident(run, now=0.0) == 0.0

    def test_base_policy_has_no_eviction(self):
        machine, policy, allocator = bound_policy(
            GPU_HM, fast_capacity=4096
        )
        machine.fast.allocate(4096)
        tensor = step_tensor(0, 4096)
        mapping = allocator.alloc(tensor, now=0.0)
        mapping.shares[0].run.initialized = True
        with pytest.raises(ResidencyError):
            policy.charge_access(
                tensor, mapping, TensorAccess(tensor, 4096, False), now=0.0
            )

    def test_inflight_promotion_waits_for_arrival(self):
        machine, policy, allocator = bound_policy(GPU_HM)
        tensor = step_tensor(0, 1 << 20)
        mapping = allocator.alloc(tensor, now=0.0)
        run = mapping.shares[0].run
        run.initialized = True
        transfer, _, _ = machine.migration.promote([run], now=0.0)
        stall = policy.ensure_resident(run, now=0.0)
        assert stall == pytest.approx(transfer.finish)
