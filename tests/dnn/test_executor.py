"""Executor: step timing, lifecycle, observers, determinism."""

import pytest

from repro.dnn.executor import Executor, StepObserver
from repro.dnn.graph import GraphBuilder, Phase
from repro.dnn.policy import PlacementPolicy
from repro.dnn.tensor import TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM


def two_layer_graph():
    b = GraphBuilder("two", batch_size=8)
    w = b.weight("w", 1 << 20)
    x = b.input("x", 1 << 18)
    with b.layer("fwd"):
        act = b.tensor("act", 1 << 18)
        tmp = b.temp("tmp", 128)
        b.op("mm", flops=1e9, reads=[x, w], writes=[act, tmp])
    with b.layer("bwd", Phase.BACKWARD):
        grad = b.tensor("grad", 1 << 20, TensorKind.GRADIENT)
        b.op("mm_bwd", flops=2e9, reads=[act], writes=[grad])
        b.op("apply", flops=1e6, reads=[grad], writes=[w])
    return b.finish()


class FastOnly(PlacementPolicy):
    name = "fast-only-test"

    def place(self, tensor, now):
        return DeviceKind.FAST


def run_once(policy=None, graph=None):
    graph = graph if graph is not None else two_layer_graph()
    machine = Machine(OPTANE_HM)
    executor = Executor(graph, machine, policy or PlacementPolicy())
    return executor, machine, executor.run_step()


class TestTiming:
    def test_roofline_per_op(self):
        """Step duration equals the sum of per-op max(compute, memory)."""
        _, machine, result = run_once()
        assert result.duration == pytest.approx(result.end_time - result.start_time)
        assert result.duration >= max(result.compute_time, 0)
        # With everything on slow, memory should dominate at least one op.
        assert result.mem_time > 0

    def test_fast_placement_is_faster(self):
        _, _, slow_result = run_once(PlacementPolicy())
        _, _, fast_result = run_once(FastOnly())
        assert fast_result.duration < slow_result.duration

    def test_steps_are_deterministic(self):
        _, _, a = run_once()
        _, _, b = run_once()
        assert a.duration == b.duration
        assert a.mem_time == b.mem_time

    def test_steady_state_across_steps(self):
        graph = two_layer_graph()
        machine = Machine(OPTANE_HM)
        executor = Executor(graph, machine, PlacementPolicy())
        results = executor.run_steps(3)
        assert results[1].duration == pytest.approx(results[2].duration)


class TestLifecycle:
    def test_preallocated_mapped_before_first_step(self):
        graph = two_layer_graph()
        machine = Machine(OPTANE_HM)
        executor = Executor(graph, machine, PlacementPolicy())
        assert executor.allocator.mapping(graph.tensor("w")) is not None
        assert executor.allocator.mapping(graph.tensor("x")) is not None

    def test_step_tensors_freed_after_step(self):
        graph = two_layer_graph()
        machine = Machine(OPTANE_HM)
        executor = Executor(graph, machine, PlacementPolicy())
        executor.run_step()
        assert executor.allocator.mapping(graph.tensor("act")) is None
        assert executor.allocator.mapping(graph.tensor("grad")) is None

    def test_memory_returns_to_baseline_between_steps(self):
        graph = two_layer_graph()
        machine = Machine(OPTANE_HM)
        executor = Executor(graph, machine, PlacementPolicy())
        executor.run_step()
        baseline = machine.slow.used
        executor.run_step()
        assert machine.slow.used == baseline

    def test_peak_usage_recorded(self):
        _, machine, result = run_once()
        assert result.peak_slow > 0
        assert result.peak_slow >= machine.slow.used

    def test_run_steps_validates_count(self):
        graph = two_layer_graph()
        executor = Executor(graph, Machine(OPTANE_HM), PlacementPolicy())
        with pytest.raises(ValueError):
            executor.run_steps(0)


class TestObservers:
    def test_observer_sees_full_lifecycle(self):
        events = []

        class Recorder(StepObserver):
            def on_step_start(self, step, now):
                events.append(("step_start", step))

            def on_tensor_allocated(self, tensor, mapping, now):
                events.append(("alloc", tensor.name))

            def on_tensor_freed(self, tensor, mapping, now):
                events.append(("free", tensor.name))

            def on_layer_end(self, layer, now):
                events.append(("layer_end", layer.index))

            def on_step_end(self, step, result):
                events.append(("step_end", step))

        graph = two_layer_graph()
        machine = Machine(OPTANE_HM)
        executor = Executor(
            graph, machine, PlacementPolicy(), observers=[Recorder()]
        )
        executor.run_step()
        assert ("alloc", "w") in events  # preallocation observed
        assert ("alloc", "act") in events
        assert ("free", "act") in events
        assert events.index(("free", "act")) < events.index(("layer_end", 1))
        assert events[-1] == ("step_end", 0)

    def test_layer_spans_cover_step(self):
        _, _, result = run_once()
        assert [span[0] for span in result.layer_spans] == [0, 1]
        assert result.layer_spans[0][1] == result.start_time
        assert result.layer_spans[-1][2] == pytest.approx(result.end_time)


class TestStallAccounting:
    def test_policy_layer_stall_charged(self):
        class Staller(PlacementPolicy):
            def on_layer_start(self, layer, now):
                return 0.25

        _, _, plain = run_once()
        _, _, stalled = run_once(Staller())
        assert stalled.stall_time == pytest.approx(0.5)  # two layers
        assert stalled.duration == pytest.approx(plain.duration + 0.5)

    def test_negative_stall_rejected(self):
        class Bad(PlacementPolicy):
            def on_layer_start(self, layer, now):
                return -1.0

        from repro.dnn.executor import ExecutionError

        graph = two_layer_graph()
        executor = Executor(graph, Machine(OPTANE_HM), Bad())
        with pytest.raises(ExecutionError):
            executor.run_step()


class TestTeardown:
    def test_returns_all_memory_after_a_step(self):
        executor, machine, _ = run_once()
        assert machine.fast.used + machine.slow.used > 0
        executor.teardown()
        assert machine.fast.used == 0
        assert machine.slow.used == 0
        assert len(machine.page_table) == 0

    def test_arena_allocator_releases_its_slabs(self):
        # ial's arena retains pages across free() by design; teardown must
        # still hand every slab back to the machine.
        from repro.baselines.registry import make_policy
        from repro.chaos import InvariantAuditor

        machine = Machine(OPTANE_HM)
        executor = Executor(two_layer_graph(), machine, make_policy("ial"))
        executor.run_step()
        executor.teardown()
        assert machine.fast.used == 0 and machine.slow.used == 0
        assert len(machine.page_table) == 0
        assert InvariantAuditor(machine).audit() is None

    def test_teardown_is_idempotent(self):
        executor, machine, _ = run_once()
        executor.teardown()
        executor.teardown()
        assert machine.fast.used == 0 and machine.slow.used == 0

    def test_teardown_mid_step_settles_in_flight_state(self):
        from repro.baselines.registry import make_policy
        from repro.chaos import InvariantAuditor
        from repro.sim.engine import Engine, Interrupt

        engine = Engine()
        machine = Machine(OPTANE_HM)
        executor = Executor(
            two_layer_graph(), machine, make_policy("ial"), engine=engine
        )

        def body():
            try:
                yield from executor.step_process()
            except Interrupt:
                pass

        proc = engine.process(body(), name="job")
        full = Executor(two_layer_graph(), Machine(OPTANE_HM), make_policy("ial"))
        duration = full.run_step().duration
        engine.run(until=duration / 2)
        assert not proc.done
        proc.interrupt(Interrupt("cancelled mid-step"))
        executor.teardown()
        assert machine.fast.used == 0 and machine.slow.used == 0
        assert len(machine.page_table) == 0
        assert InvariantAuditor(machine).audit() is None
