"""Tensor semantics: lifetime, shortness, identity."""

import pytest

from repro.dnn.tensor import PRE_STEP, Tensor, TensorKind


def make(nbytes=1024, alloc=2, free=5, preallocated=False):
    tensor = Tensor(
        tid=1,
        name="t",
        nbytes=nbytes,
        kind=TensorKind.ACTIVATION,
        preallocated=preallocated,
    )
    if preallocated:
        tensor.alloc_layer = PRE_STEP
        tensor.free_layer = None
    else:
        tensor.alloc_layer = alloc
        tensor.free_layer = free
    return tensor


class TestTensor:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Tensor(tid=0, name="x", nbytes=0, kind=TensorKind.TEMP)

    def test_lifetime_layers(self):
        assert make(alloc=2, free=5).lifetime_layers == 4
        assert make(alloc=3, free=3).lifetime_layers == 1

    def test_preallocated_has_no_lifetime(self):
        assert make(preallocated=True).lifetime_layers is None

    def test_short_lived_definition(self):
        """The paper's definition: alive no longer than one layer."""
        assert make(alloc=3, free=3).short_lived
        assert not make(alloc=3, free=4).short_lived
        assert not make(preallocated=True).short_lived

    def test_is_small(self):
        assert make(nbytes=4095).is_small(4096)
        assert not make(nbytes=4096).is_small(4096)

    def test_touch_accounting(self):
        tensor = make()
        tensor.layer_touches = {2: 3, 5: 1}
        assert tensor.total_touches == 4
        assert tensor.access_layers() == (2, 5)

    def test_identity_by_tid(self):
        a = make()
        b = make()
        assert a == b  # same tid
        assert hash(a) == hash(b)
        b2 = Tensor(tid=2, name="t", nbytes=10, kind=TensorKind.TEMP)
        assert a != b2
