"""Graph builder: lifetimes, validation, memory accounting."""

import pytest

from repro.dnn.graph import GraphBuilder, GraphError, Phase
from repro.dnn.ops import TensorAccess
from repro.dnn.tensor import PRE_STEP, TensorKind


def toy_graph():
    b = GraphBuilder("toy", batch_size=4)
    w = b.weight("w", 4096)
    x = b.input("x", 2048)
    with b.layer("l0"):
        act = b.tensor("act", 2048)
        tmp = b.temp("tmp", 64)
        b.op("f", flops=1e6, reads=[x, w], writes=[act, tmp])
    with b.layer("l1", Phase.BACKWARD):
        grad = b.tensor("grad", 4096, TensorKind.GRADIENT)
        b.op("g", flops=2e6, reads=[act], writes=[grad])
        b.op("apply", flops=1e3, reads=[grad], writes=[w])
    return b.finish()


class TestBuilder:
    def test_lifetimes_assigned_from_usage(self):
        graph = toy_graph()
        act = graph.tensor("act")
        assert act.alloc_layer == 0
        assert act.free_layer == 1
        tmp = graph.tensor("tmp")
        assert tmp.alloc_layer == 0
        assert tmp.free_layer == 0
        assert tmp.short_lived

    def test_preallocated_lifetimes(self):
        graph = toy_graph()
        w = graph.tensor("w")
        assert w.preallocated
        assert w.alloc_layer == PRE_STEP
        assert w.free_layer is None

    def test_layer_touches_ground_truth(self):
        graph = toy_graph()
        act = graph.tensor("act")
        assert act.layer_touches == {0: 1, 1: 1}
        w = graph.tensor("w")
        assert w.layer_touches == {0: 1, 1: 1}

    def test_tensor_outside_layer_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        with pytest.raises(GraphError):
            b.tensor("bad", 10)

    def test_op_outside_layer_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        w = b.weight("w", 10)
        with pytest.raises(GraphError):
            b.op("f", flops=1.0, reads=[w])

    def test_empty_layer_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        b.begin_layer("empty")
        with pytest.raises(GraphError):
            b.end_layer()

    def test_nested_layer_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        b.begin_layer("a")
        with pytest.raises(GraphError):
            b.begin_layer("b")

    def test_unreferenced_tensor_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        w = b.weight("w", 10)
        with b.layer("l"):
            b.tensor("never_used", 10)
            b.op("f", flops=1.0, reads=[w])
        with pytest.raises(GraphError):
            b.finish()

    def test_unknown_tensor_in_op_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        other = GraphBuilder("y", batch_size=1)
        with other.layer("l"):
            foreign = other.tensor("foreign", 10)
            other.op("f", flops=1.0, writes=[foreign])
        b.begin_layer("l")
        with pytest.raises(GraphError):
            b.op("f", flops=1.0, reads=[foreign])

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder("x", batch_size=0)

    def test_finish_with_open_layer_rejected(self):
        b = GraphBuilder("x", batch_size=1)
        w = b.weight("w", 10)
        b.begin_layer("l")
        b.op("f", flops=1.0, reads=[w])
        with pytest.raises(GraphError):
            b.finish()

    def test_access_spec_coercion(self):
        b = GraphBuilder("x", batch_size=1)
        w = b.weight("w", 1000)
        with b.layer("l"):
            op = b.op(
                "f",
                flops=1.0,
                reads=[w, (w, 500), (w, 100, 3), TensorAccess(w, 50, False)],
            )
        assert [a.nbytes for a in op.accesses] == [1000, 500, 100, 50]
        assert op.accesses[2].passes == 3


class TestGraphQueries:
    def test_live_bytes_and_peak(self):
        graph = toy_graph()
        prealloc = 4096 + 2048  # w + x
        assert graph.live_bytes_at(0) == prealloc + 2048 + 64
        assert graph.live_bytes_at(1) == prealloc + 2048 + 4096
        assert graph.peak_memory_bytes() == prealloc + 2048 + 4096

    def test_signature_stability(self):
        assert toy_graph().signature() == toy_graph().signature()

    def test_signature_differs_for_different_structure(self):
        b = GraphBuilder("toy", batch_size=4)
        w = b.weight("w", 10)
        with b.layer("l0"):
            b.op("different", flops=1.0, reads=[w])
        assert b.finish().signature() != toy_graph().signature()

    def test_tensor_lookup(self):
        graph = toy_graph()
        assert graph.tensor("act").name == "act"
        with pytest.raises(GraphError):
            graph.tensor("nope")

    def test_partitions(self):
        graph = toy_graph()
        assert {t.name for t in graph.preallocated()} == {"w", "x"}
        assert {t.name for t in graph.step_tensors()} == {"act", "tmp", "grad"}

    def test_total_flops(self):
        assert toy_graph().total_flops() == pytest.approx(1e6 + 2e6 + 1e3)
