"""Arena fragmentation accounting and bounded compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn.arena import ArenaAllocator
from repro.dnn.tensor import Tensor, TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.obs import EventTracer

PAGE = OPTANE_HM.page_size
SLAB = ArenaAllocator.SLAB_PAGES * PAGE


def make_arena(tracer=None):
    machine = Machine.for_platform(
        OPTANE_HM, fast_capacity=PAGE * 64, tracer=tracer
    )
    arena = ArenaAllocator(machine, lambda tensor, now: DeviceKind.SLOW)
    return machine, arena


def make_tensor(tid, nbytes):
    tensor = Tensor(tid=tid, name=f"t{tid}", nbytes=nbytes, kind=TensorKind.TEMP)
    tensor.alloc_layer = 0
    tensor.free_layer = 0
    return tensor


def two_slab_fragmentation(arena):
    """Two slabs, each half tenant / half free — one is vacatable."""
    half = SLAB // 2
    tensors = [make_tensor(i, half) for i in range(4)]
    for tensor in tensors:
        arena.alloc(tensor, now=0.0)
    arena.free(tensors[1], now=0.0)  # slab A: t0 resident, half free
    arena.free(tensors[2], now=0.0)  # slab B: t3 resident, half free
    return tensors


class TestFragmentationAccounting:
    def test_free_plus_resident_covers_arena(self):
        machine, arena = make_arena()
        tensors = two_slab_fragmentation(arena)
        assert arena.free_bytes + arena.resident_bytes == arena.arena_bytes

    def test_fragmentation_bytes_measures_small_chunks(self):
        machine, arena = make_arena()
        two_slab_fragmentation(arena)
        half = SLAB // 2
        # Both free chunks are half-slab sized: unusable for a full-slab
        # request, fine for anything half-slab or smaller.
        assert arena.fragmentation_bytes(SLAB) == 2 * half
        assert arena.fragmentation_bytes(half) == 0

    def test_default_class_is_largest_request(self):
        machine, arena = make_arena()
        two_slab_fragmentation(arena)
        # Largest request seen is half a slab, which both chunks satisfy.
        assert arena.fragmentation_bytes() == 0
        bigger = make_tensor(99, SLAB)
        arena.alloc(bigger, now=0.0)
        arena.free(bigger, now=0.0)
        assert arena.fragmentation_bytes() > 0

    def test_external_fragmentation_bounds(self):
        machine, arena = make_arena()
        assert arena.external_fragmentation() == 0.0
        two_slab_fragmentation(arena)
        assert 0.0 <= arena.external_fragmentation(SLAB) <= 1.0
        assert arena.external_fragmentation(SLAB) > 0.0


class TestCoalesce:
    def test_adjacent_free_chunks_merge(self):
        machine, arena = make_arena()
        quarter = SLAB // 4
        tensors = [make_tensor(i, quarter) for i in range(4)]  # one slab
        for tensor in tensors:
            arena.alloc(tensor, now=0.0)
        for tensor in tensors:
            arena.free(tensor, now=0.0)
        merges = arena.coalesce()
        assert merges == 3  # four quarters -> one whole-slab chunk
        fit = make_tensor(10, SLAB)
        mapping = arena.alloc(fit, now=0.0)
        # The merged chunk serves a request no fragment could.
        assert machine.slow.used == SLAB

    def test_non_adjacent_chunks_stay_split(self):
        machine, arena = make_arena()
        two_slab_fragmentation(arena)
        assert arena.coalesce() == 0


class TestCompaction:
    def test_vacates_slab_and_returns_frames(self):
        machine, arena = make_arena()
        tensors = two_slab_fragmentation(arena)
        assert machine.slow.used == 2 * SLAB
        report = arena.compact(now=0.0)
        assert report.moves == 1
        assert report.freed_runs == 1
        assert report.freed_bytes == SLAB
        assert machine.slow.used == SLAB
        assert arena.arena_bytes == SLAB

    def test_relocated_tenant_mapping_follows(self):
        machine, arena = make_arena()
        tensors = two_slab_fragmentation(arena)
        report = arena.compact(now=0.0)
        moved_tid = report.relocated[0]
        moved = tensors[moved_tid]
        mapping = arena.mapping(moved)
        surviving_vpns = {run.vpn for run in arena._owned_runs}
        assert mapping.shares[0].run.vpn in surviving_vpns
        # The moved tensor can still be freed and its chunk recycled.
        arena.free(moved, now=1.0)
        again = make_tensor(50, moved.nbytes)
        arena.alloc(again, now=1.0)
        assert machine.slow.used == SLAB

    def test_relocation_pays_channel_time(self):
        machine, arena = make_arena()
        two_slab_fragmentation(arena)
        report = arena.compact(now=0.0)
        assert report.finish > 0.0
        assert (
            machine.stats.counter("migration.relocated_bytes").value
            == report.moved_bytes
            > 0
        )
        assert machine.demote_channel.bytes_moved == report.moved_bytes

    def test_bounded_by_max_moves(self):
        machine, arena = make_arena()
        two_slab_fragmentation(arena)
        report = arena.compact(now=0.0, max_moves=0)
        assert report.moves == 0
        assert machine.slow.used == 2 * SLAB  # nothing vacated

    def test_empty_slab_freed_without_moves(self):
        machine, arena = make_arena()
        half = SLAB // 2
        keep = make_tensor(0, half)
        arena.alloc(keep, now=0.0)
        extra = make_tensor(1, SLAB)  # forces a second slab
        arena.alloc(extra, now=0.0)
        arena.free(extra, now=0.0)
        report = arena.compact(now=0.0, max_moves=0)
        assert report.moves == 0
        assert report.freed_runs == 1
        assert machine.slow.used == SLAB

    def test_receiving_slab_not_vacated_same_pass(self):
        """A slab that gained tenants mid-pass must survive the pass."""
        machine, arena = make_arena()
        tensors = two_slab_fragmentation(arena)
        report = arena.compact(now=0.0, max_moves=8)
        # One slab absorbed the other's tenant; with budget to spare the
        # receiver must still be intact (both tenants resident).
        assert report.freed_runs == 1
        live = [t for i, t in enumerate(tensors) if i in (0, 3)]
        for tensor in live:
            mapping = arena.mapping(tensor)
            assert mapping.shares[0].run.vpn in machine.page_table

    def test_pinned_slab_not_vacated(self):
        machine, arena = make_arena()
        tensors = two_slab_fragmentation(arena)
        for run in arena._owned_runs:
            run.pinned = True
        report = arena.compact(now=0.0)
        assert report.moves == 0 and report.freed_runs == 0
        assert machine.slow.used == 2 * SLAB

    def test_compaction_counters_and_trace(self):
        tracer = EventTracer()
        machine, arena = make_arena(tracer=tracer)
        two_slab_fragmentation(arena)
        report = arena.compact(now=0.0)
        stats = machine.stats
        assert stats.counter("pressure.compaction_passes").value == 1
        assert stats.counter("pressure.compaction_moves").value == report.moves
        assert (
            stats.counter("pressure.compaction_bytes").value
            == report.moved_bytes
        )
        assert (
            stats.counter("pressure.compaction_freed_bytes").value
            == report.freed_bytes
        )
        spans = [
            e
            for e in tracer.events
            if e.cat == "pressure" and e.name == "compaction"
        ]
        assert len(spans) == 1
        assert spans[0].args["moves"] == report.moves
        assert spans[0].args["freed_bytes"] == report.freed_bytes

    def test_idle_pass_records_nothing(self):
        tracer = EventTracer()
        machine, arena = make_arena(tracer=tracer)
        tensor = make_tensor(0, SLAB)
        arena.alloc(tensor, now=0.0)
        report = arena.compact(now=0.0)
        assert report.moves == 0 and report.freed_runs == 0
        assert machine.stats.counter("pressure.compaction_passes").value == 0
        assert not [e for e in tracer.events if e.cat == "pressure"]


class TestArenaPressureProperties:
    """Property suite: the arena's books must balance under any sequence."""

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=PAGE * 20), min_size=1, max_size=30
        ),
        data=st.data(),
    )
    def test_free_plus_resident_equals_owned(self, sizes, data):
        machine, arena = make_arena()
        live = []
        for index, nbytes in enumerate(sizes):
            tensor = make_tensor(index, nbytes)
            arena.alloc(tensor, now=0.0)
            live.append(tensor)
            if live and data.draw(st.booleans()):
                victim = live.pop(
                    data.draw(st.integers(min_value=0, max_value=len(live) - 1))
                )
                arena.free(victim, now=0.0)
            # Freed chunks carry their split remainders, so the identity
            # must hold after *every* operation, not just at the end.
            assert (
                arena.free_bytes + arena.resident_bytes == arena.arena_bytes
            )
            assert machine.slow.used == arena.arena_bytes

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=PAGE * 8), min_size=1, max_size=20
        )
    )
    def test_release_all_zeroes_fragmentation(self, sizes):
        machine, arena = make_arena()
        tensors = [make_tensor(i, s) for i, s in enumerate(sizes)]
        for tensor in tensors:
            arena.alloc(tensor, now=0.0)
        for tensor in tensors[::2]:
            arena.free(tensor, now=0.0)
        arena.release_all(now=0.0)
        assert arena.external_fragmentation() == 0.0
        assert arena.fragmentation_bytes() == 0
        assert arena.free_bytes == 0
        assert machine.slow.used == 0

    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=PAGE, max_value=SLAB), min_size=4, max_size=16
        ),
        keep_mask=st.lists(st.booleans(), min_size=4, max_size=16),
    )
    def test_compaction_preserves_accounting(self, sizes, keep_mask):
        machine, arena = make_arena()
        tensors = [make_tensor(i, s) for i, s in enumerate(sizes)]
        for tensor in tensors:
            arena.alloc(tensor, now=0.0)
        survivors = []
        for index, tensor in enumerate(tensors):
            if keep_mask[index % len(keep_mask)]:
                survivors.append(tensor)
            else:
                arena.free(tensor, now=0.0)
        before = arena.resident_bytes
        arena.compact(now=0.0, max_moves=8)
        assert arena.resident_bytes == before  # moves never lose tenants
        assert arena.free_bytes + arena.resident_bytes == arena.arena_bytes
        assert machine.slow.used == arena.arena_bytes
        for tensor in survivors:
            mapping = arena.mapping(tensor)
            assert mapping is not None
            assert mapping.shares[0].run.vpn in machine.page_table
        # Every survivor can still be freed cleanly.
        for tensor in survivors:
            arena.free(tensor, now=1.0)
        assert arena.resident_bytes == 0
