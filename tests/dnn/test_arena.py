"""Arena allocator: chunk recycling, page persistence, BFC semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn.alloc import AllocationError
from repro.dnn.arena import ArenaAllocator
from repro.dnn.tensor import Tensor, TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM

PAGE = OPTANE_HM.page_size


def make_arena():
    machine = Machine(OPTANE_HM)
    arena = ArenaAllocator(machine, lambda tensor, now: DeviceKind.SLOW)
    return machine, arena


def make_tensor(tid, nbytes):
    tensor = Tensor(tid=tid, name=f"t{tid}", nbytes=nbytes, kind=TensorKind.TEMP)
    tensor.alloc_layer = 0
    tensor.free_layer = 0
    return tensor


class TestChunkRecycling:
    def test_freed_chunk_is_reused(self):
        machine, arena = make_arena()
        a = make_tensor(0, 1000)
        mapping_a = arena.alloc(a, now=0.0)
        run_a = mapping_a.shares[0].run
        arena.free(a, now=0.0)
        b = make_tensor(1, 900)
        mapping_b = arena.alloc(b, now=0.0)
        # Same underlying run: the arena recycled the chunk.
        assert mapping_b.shares[0].run.vpn == run_a.vpn

    def test_pages_not_returned_on_free(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, PAGE * 4)
        arena.alloc(tensor, now=0.0)
        used = machine.slow.used
        arena.free(tensor, now=0.0)
        assert machine.slow.used == used  # the arena keeps its slabs

    def test_release_all_returns_everything(self):
        machine, arena = make_arena()
        tensors = [make_tensor(i, 5000 * (i + 1)) for i in range(5)]
        for tensor in tensors:
            arena.alloc(tensor, now=0.0)
        for tensor in tensors:
            arena.free(tensor, now=0.0)
        arena.release_all(now=0.0)
        assert machine.slow.used == 0
        assert arena.arena_bytes == 0

    def test_best_fit_prefers_smallest_sufficient_chunk(self):
        machine, arena = make_arena()
        big = make_tensor(0, PAGE * 8)
        small = make_tensor(1, PAGE)
        arena.alloc(big, now=0.0)
        arena.alloc(small, now=0.0)
        arena.free(big, now=0.0)
        arena.free(small, now=0.0)
        # A tensor the size of the small chunk reuses it, not the big one.
        fit = make_tensor(2, PAGE)
        mapping = arena.alloc(fit, now=0.0)
        assert mapping.shares[0].nbytes == PAGE

    def test_split_remainder_is_allocatable(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, 100)  # slab is SLAB_PAGES pages; big split
        arena.alloc(tensor, now=0.0)
        before = machine.slow.used
        other = make_tensor(1, 100)
        arena.alloc(other, now=0.0)
        # Second allocation came from the remainder: no new slab mapped.
        assert machine.slow.used == before

    def test_double_alloc_rejected(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, 100)
        arena.alloc(tensor, now=0.0)
        with pytest.raises(AllocationError):
            arena.alloc(tensor, now=0.0)

    def test_free_unknown_rejected(self):
        machine, arena = make_arena()
        with pytest.raises(AllocationError):
            arena.free(make_tensor(0, 100), now=0.0)


class TestPersistence:
    def test_promoted_run_stays_fast_for_next_tenant(self):
        """The mechanism behind IAL's cross-step behaviour."""
        machine, arena = make_arena()
        first = make_tensor(0, PAGE * 2)
        mapping = arena.alloc(first, now=0.0)
        run = mapping.shares[0].run
        transfer, _, _ = machine.migration.promote([run], now=0.0)
        machine.migration.sync(transfer.finish)
        arena.free(first, now=1.0)
        second = make_tensor(1, PAGE * 2)
        mapping2 = arena.alloc(second, now=1.0)
        assert mapping2.shares[0].run.device is DeviceKind.FAST

    def test_counters_accumulate_across_tenants(self):
        """Observation 3's time dimension: page heat outlives tensors."""
        machine, arena = make_arena()
        first = make_tensor(0, PAGE)
        mapping = arena.alloc(first, now=0.0)
        run = mapping.shares[0].run
        run.poisoned = True
        machine.fault_handler.on_access_pass(run, 1, is_write=False, passes=5)
        arena.free(first, now=0.0)
        second = make_tensor(1, PAGE)
        mapping2 = arena.alloc(second, now=0.0)
        assert mapping2.shares[0].run.accesses >= 5  # inherited heat


class TestArenaProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=PAGE * 20), min_size=1, max_size=40
        ),
        free_order=st.randoms(use_true_random=False),
    )
    def test_alloc_free_cycles_conserve_accounting(self, sizes, free_order):
        machine, arena = make_arena()
        tensors = [make_tensor(i, s) for i, s in enumerate(sizes)]
        for tensor in tensors:
            mapping = arena.alloc(tensor, now=0.0)
            assert mapping.nbytes == tensor.nbytes
        shuffled = list(tensors)
        free_order.shuffle(shuffled)
        for tensor in shuffled:
            arena.free(tensor, now=0.0)
        assert arena.live_tensor_bytes == 0
        # Device usage equals the arena's retained slabs exactly.
        assert machine.slow.used == arena.arena_bytes
        arena.release_all(now=0.0)
        assert machine.slow.used == 0

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=64, max_value=PAGE * 4), min_size=2, max_size=30
        )
    )
    def test_second_round_reuses_pages(self, sizes):
        """A steady training loop stops growing the arena after step one."""
        machine, arena = make_arena()
        for round_index in range(2):
            tensors = [
                make_tensor(round_index * 1000 + i, s) for i, s in enumerate(sizes)
            ]
            for tensor in tensors:
                arena.alloc(tensor, now=0.0)
            if round_index == 0:
                first_round_bytes = arena.arena_bytes
            for tensor in tensors:
                arena.free(tensor, now=0.0)
        assert arena.arena_bytes == first_round_bytes


class TestPageRetirementQuarantine:
    """RAS retirement on a BFC slab: quarantine, never carve."""

    def _retire(self, arena, run, page_index):
        return arena.retire_page(run, run.vpn + page_index, now=0.0)

    def test_retire_returns_false_and_keeps_slab_mapped(self):
        machine, arena = make_arena()
        mapping = arena.alloc(make_tensor(0, PAGE * 4), now=0.0)
        run = mapping.shares[0].run
        assert self._retire(arena, run, 1) is False
        assert run.vpn in machine.page_table
        assert machine.page_table.entry(run.vpn).npages == run.npages

    def test_freed_tenant_bytes_skip_the_quarantined_page(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, PAGE * 4)
        mapping = arena.alloc(tensor, now=0.0)
        run = mapping.shares[0].run
        self._retire(arena, run, 1)
        arena.free(tensor, now=0.0)
        # The slab's free list covers everything except the dead page.
        slab_bytes = run.npages * PAGE
        assert arena.free_bytes == slab_bytes - PAGE
        # No free chunk overlaps the quarantined range.
        for chunks in arena._bins.values():
            for chunk in chunks:
                if chunk.run is run:
                    assert not (
                        chunk.offset < 2 * PAGE
                        and chunk.offset + chunk.nbytes > PAGE
                    )

    def test_quarantined_range_is_never_reallocated(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, PAGE * 4)
        arena.alloc(tensor, now=0.0)
        run = arena.mapping(tensor).shares[0].run
        self._retire(arena, run, 0)
        arena.free(tensor, now=0.0)
        # Refilling the slab never places a tenant over the dead page.
        placed = []
        for tid in range(1, 20):
            t = make_tensor(tid, PAGE)
            mapping = arena.alloc(t, now=0.0)
            placed.extend(arena._chunks_by_tid[t.tid])
        for chunk in placed:
            if chunk.run is run:
                assert not (
                    chunk.offset < PAGE and chunk.offset + chunk.nbytes > 0
                )

    def test_free_chunk_struck_by_retirement_is_clipped(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, PAGE * 4)
        arena.alloc(tensor, now=0.0)
        run = arena.mapping(tensor).shares[0].run
        arena.free(tensor, now=0.0)  # slab fully on the free lists
        free_before = arena.free_bytes
        self._retire(arena, run, 2)
        # Exactly one page of free space disappears; the remnants on
        # either side of the hole stay allocatable.
        assert arena.free_bytes == free_before - PAGE
        small = make_tensor(1, PAGE)
        assert arena.alloc(small, now=0.0).shares[0].run.vpn == run.vpn

    def test_release_all_clears_quarantine_and_returns_slabs(self):
        machine, arena = make_arena()
        tensor = make_tensor(0, PAGE * 4)
        arena.alloc(tensor, now=0.0)
        run = arena.mapping(tensor).shares[0].run
        self._retire(arena, run, 1)
        arena.release_all(now=0.0)
        assert machine.slow.used == 0
        assert len(machine.page_table) == 0
        assert arena._quarantined == {}

    def test_unowned_or_stale_runs_are_refused(self):
        machine, arena = make_arena()
        foreign = machine.map_run(2, DeviceKind.SLOW)
        assert arena.retire_page(foreign, foreign.vpn, now=0.0) is False
