"""Tracer: recording, analysis helpers, export."""

import pytest

from repro.dnn import Executor, PlacementPolicy, Tracer
from repro.dnn.trace import TraceRecord
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


@pytest.fixture(scope="module")
def traced_run():
    graph = build_model("dcgan", batch_size=16)
    tracer = Tracer()
    executor = Executor(graph, Machine(OPTANE_HM), PlacementPolicy(), tracer=tracer)
    result = executor.run_step()
    return graph, tracer, result


class TestRecording:
    def test_one_record_per_access(self, traced_run):
        graph, tracer, _ = traced_run
        expected = sum(len(op.accesses) for layer in graph.layers for op in layer.ops)
        assert len(tracer) == expected

    def test_trace_traffic_matches_step_result(self, traced_run):
        _, tracer, result = traced_run
        fast, slow = tracer.traffic()
        assert fast == result.bytes_fast
        assert slow == result.bytes_slow

    def test_records_carry_context(self, traced_run):
        graph, tracer, _ = traced_run
        record = tracer.records[0]
        assert record.layer_index == 0
        assert record.layer_name == graph.layers[0].name
        assert record.when >= 0.0

    def test_served_from_classification(self):
        base = dict(
            step=0, layer_index=0, layer_name="l", op_name="o",
            tensor_name="t", tensor_kind="temp", nbytes=1, passes=1,
            is_write=False, mem_time=0.0, stall=0.0, fault_time=0.0, when=0.0,
        )
        assert TraceRecord(**base, bytes_fast=1, bytes_slow=0).served_from == "fast"
        assert TraceRecord(**base, bytes_fast=0, bytes_slow=1).served_from == "slow"
        assert TraceRecord(**base, bytes_fast=1, bytes_slow=1).served_from == "mixed"

    def test_truncation_cap(self):
        graph = build_model("dcgan", batch_size=8)
        tracer = Tracer(max_records=10)
        executor = Executor(graph, Machine(OPTANE_HM), PlacementPolicy(), tracer=tracer)
        executor.run_step()
        assert len(tracer) == 10
        assert tracer.truncated

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)

    def test_clear(self, traced_run):
        _, tracer, _ = traced_run
        copy = Tracer()
        copy.records = list(tracer.records)
        copy.clear()
        assert len(copy) == 0 and not copy.truncated


class TestAnalysis:
    def test_by_layer_partition(self, traced_run):
        graph, tracer, _ = traced_run
        grouped = tracer.by_layer()
        assert set(grouped) == set(range(graph.num_layers))
        assert sum(len(v) for v in grouped.values()) == len(tracer)

    def test_slow_time_by_kind_on_slow_policy(self, traced_run):
        _, tracer, _ = traced_run
        totals = tracer.slow_time_by_kind()
        assert totals  # slow-only run: everything is slow
        assert all(v > 0 for v in totals.values())

    def test_hottest_tensors_ranked(self, traced_run):
        _, tracer, _ = traced_run
        ranked = tracer.hottest_tensors(top=5)
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)
        assert ranked[0][0] == "runtime.workspace"

    def test_stall_events_empty_on_cpu(self, traced_run):
        _, tracer, _ = traced_run
        assert tracer.stall_events() == []


class TestExport:
    def test_csv_roundtrip_shape(self, traced_run):
        _, tracer, _ = traced_run
        lines = tracer.to_csv().splitlines()
        assert lines[0].split(",") == list(Tracer.FIELDS)
        assert len(lines) == len(tracer) + 1

    def test_write_csv(self, traced_run, tmp_path):
        _, tracer, _ = traced_run
        path = tmp_path / "trace.csv"
        tracer.write_csv(str(path))
        assert path.read_text().startswith("step,")
