"""Allocators: packing, page alignment, grouping, run refcounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn.alloc import (
    AllocationError,
    GroupedAllocator,
    PackedAllocator,
    PageAlignedAllocator,
)
from repro.dnn.tensor import Tensor, TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM

PAGE = OPTANE_HM.page_size


def machine():
    return Machine(OPTANE_HM)


def place_slow(tensor, now):
    return DeviceKind.SLOW


def make_tensor(tid, nbytes, alloc=0, free=0):
    tensor = Tensor(tid=tid, name=f"t{tid}", nbytes=nbytes, kind=TensorKind.TEMP)
    tensor.alloc_layer = alloc
    tensor.free_layer = free
    return tensor


class TestPackedAllocator:
    def test_small_tensors_share_a_page(self):
        alloc = PackedAllocator(machine(), place_slow)
        a = alloc.alloc(make_tensor(0, 100), now=0.0)
        b = alloc.alloc(make_tensor(1, 100), now=0.0)
        assert a.shares[0].run.vpn == b.shares[0].run.vpn
        assert alloc.live_page_bytes == PAGE

    def test_large_tensor_gets_dedicated_pages_plus_shared_tail(self):
        alloc = PackedAllocator(machine(), place_slow)
        big = alloc.alloc(make_tensor(0, PAGE * 2 + 100), now=0.0)
        assert sum(s.nbytes for s in big.shares) == PAGE * 2 + 100
        tail_run = big.shares[-1].run
        small = alloc.alloc(make_tensor(1, 50), now=0.0)
        # False sharing: the small tensor lands in the big tensor's tail page.
        assert small.shares[0].run.vpn == tail_run.vpn

    def test_page_freed_when_last_resident_leaves(self):
        m = machine()
        alloc = PackedAllocator(m, place_slow)
        a = make_tensor(0, 100)
        b = make_tensor(1, 100)
        alloc.alloc(a, now=0.0)
        alloc.alloc(b, now=0.0)
        alloc.free(a, now=0.0)
        assert m.slow.used == PAGE  # b still resident
        alloc.free(b, now=0.0)
        assert m.slow.used == 0

    def test_double_alloc_rejected(self):
        alloc = PackedAllocator(machine(), place_slow)
        t = make_tensor(0, 100)
        alloc.alloc(t, now=0.0)
        with pytest.raises(AllocationError):
            alloc.alloc(t, now=0.0)

    def test_free_unknown_rejected(self):
        alloc = PackedAllocator(machine(), place_slow)
        with pytest.raises(AllocationError):
            alloc.free(make_tensor(0, 100), now=0.0)

    def test_page_not_reused_after_full(self):
        alloc = PackedAllocator(machine(), place_slow)
        alloc.alloc(make_tensor(0, PAGE), now=0.0)  # exactly one page
        b = alloc.alloc(make_tensor(1, 10), now=0.0)
        assert b.shares[0].run.vpn != 0 or b.shares[0].run.npages == 1


class TestPageAlignedAllocator:
    def test_one_tensor_per_run(self):
        m = machine()
        alloc = PageAlignedAllocator(m, place_slow)
        a = alloc.alloc(make_tensor(0, 100), now=0.0)
        b = alloc.alloc(make_tensor(1, 100), now=0.0)
        assert a.shares[0].run.vpn != b.shares[0].run.vpn
        assert m.slow.used == 2 * PAGE

    def test_rounding_overhead_tracked(self):
        alloc = PageAlignedAllocator(machine(), place_slow)
        alloc.alloc(make_tensor(0, 1), now=0.0)
        assert alloc.live_page_bytes == PAGE
        assert alloc.live_tensor_bytes == 1
        assert alloc.fragmentation_overhead == pytest.approx(PAGE - 1)


class TestGroupedAllocator:
    def test_same_group_shares_pages(self):
        alloc = GroupedAllocator(machine(), place_slow, lambda t: "g")
        a = alloc.alloc(make_tensor(0, 100), now=0.0)
        b = alloc.alloc(make_tensor(1, 100), now=0.0)
        assert a.shares[0].run.vpn == b.shares[0].run.vpn

    def test_different_groups_never_share(self):
        alloc = GroupedAllocator(
            machine(), place_slow, lambda t: "short" if t.nbytes < 200 else "long"
        )
        a = alloc.alloc(make_tensor(0, 100), now=0.0)
        b = alloc.alloc(make_tensor(1, 500), now=0.0)
        vpns_a = {s.run.vpn for s in a.shares}
        vpns_b = {s.run.vpn for s in b.shares}
        assert not vpns_a & vpns_b

    def test_none_group_is_dedicated(self):
        alloc = GroupedAllocator(machine(), place_slow, lambda t: None)
        a = alloc.alloc(make_tensor(0, 100), now=0.0)
        b = alloc.alloc(make_tensor(1, 100), now=0.0)
        assert a.shares[0].run.vpn != b.shares[0].run.vpn

    def test_users_of(self):
        alloc = GroupedAllocator(machine(), place_slow, lambda t: "g")
        a = make_tensor(0, 100)
        b = make_tensor(1, 100)
        alloc.alloc(a, now=0.0)
        mapping = alloc.alloc(b, now=0.0)
        run = mapping.shares[0].run
        assert alloc.users_of(run) == {0, 1}
        alloc.free(a, now=0.0)
        assert alloc.users_of(run) == {1}


class TestMappingQueries:
    def test_bytes_on_device(self):
        m = machine()
        alloc = PageAlignedAllocator(m, place_slow)
        mapping = alloc.alloc(make_tensor(0, PAGE * 2), now=0.0)
        assert mapping.bytes_on(DeviceKind.SLOW, now=0.0) == PAGE * 2
        assert mapping.bytes_on(DeviceKind.FAST, now=0.0) == 0
        m.migration.promote(mapping.runs(), now=0.0)
        m.migration.sync(1e9)
        assert mapping.bytes_on(DeviceKind.FAST, now=1e9) == PAGE * 2


class TestAllocatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=PAGE * 3), min_size=1, max_size=40)
    )
    def test_alloc_free_conserves_device_capacity(self, sizes):
        """Every allocator returns all pages once every tensor is freed, and
        mapped bytes always cover requested bytes."""
        for factory in (
            lambda m: PackedAllocator(m, place_slow),
            lambda m: PageAlignedAllocator(m, place_slow),
            lambda m: GroupedAllocator(m, place_slow, lambda t: t.nbytes % 3),
        ):
            m = machine()
            alloc = factory(m)
            tensors = [make_tensor(i, s) for i, s in enumerate(sizes)]
            for tensor in tensors:
                mapping = alloc.alloc(tensor, now=0.0)
                assert mapping.nbytes == tensor.nbytes
            assert alloc.live_page_bytes >= alloc.live_tensor_bytes
            assert m.slow.used == alloc.live_page_bytes
            for tensor in tensors:
                alloc.free(tensor, now=0.0)
            assert m.slow.used == 0
            assert alloc.live_tensor_bytes == 0


class TestUnmappedRunHardening:
    """A run evicted through machine.unmap_run must not poison the packer.

    External actors (arena compaction, pressure reclaim teardown, tests)
    can unmap a run the allocator still references.  The open-page slot and
    free() must both tolerate the stale state instead of resurrecting a
    dead mapping or raising.
    """

    def test_open_page_not_reused_after_external_unmap(self):
        m = machine()
        allocator = PackedAllocator(m, place_slow)
        first = make_tensor(0, 100)
        mapping = allocator.alloc(first, now=0.0)
        run = mapping.shares[0].run
        m.unmap_run(run, now=0.0)  # eviction behind the allocator's back
        second = make_tensor(1, 100)
        mapping2 = allocator.alloc(second, now=0.0)
        fresh = mapping2.shares[0].run
        assert fresh.vpn != run.vpn
        assert fresh.vpn in m.page_table

    def test_open_page_not_reused_after_user_state_lost(self):
        m = machine()
        allocator = PackedAllocator(m, place_slow)
        first = make_tensor(0, 100)
        mapping = allocator.alloc(first, now=0.0)
        run = mapping.shares[0].run
        # Simulate a bookkeeping wipe that left the page table intact.
        allocator._run_users.pop(run.vpn)
        second = make_tensor(1, 100)
        mapping2 = allocator.alloc(second, now=0.0)
        assert mapping2.shares[0].run.vpn != run.vpn

    def test_free_of_externally_unmapped_tensor_is_quiet(self):
        m = machine()
        allocator = PackedAllocator(m, place_slow)
        first = make_tensor(0, 100)
        run = allocator.alloc(first, now=0.0).shares[0].run
        m.unmap_run(run, now=0.0)
        allocator._run_users.pop(run.vpn, None)  # eviction wiped the books
        allocator.free(first, now=0.0)  # must not raise
        assert allocator.live_tensor_bytes == 0

    def test_free_skips_unmap_when_run_already_gone(self):
        m = machine()
        allocator = PackedAllocator(m, place_slow)
        first = make_tensor(0, 100)
        run = allocator.alloc(first, now=0.0).shares[0].run
        m.unmap_run(run, now=0.0)
        # _run_users still names the tensor; free() must drop the books
        # without calling unmap_run on the dead vpn.
        allocator.free(first, now=0.0)
        assert allocator.live_page_bytes == 0
        assert run.vpn not in allocator._run_users

    def test_survivor_on_shared_page_unaffected(self):
        m = machine()
        allocator = PackedAllocator(m, place_slow)
        first = make_tensor(0, 100)
        second = make_tensor(1, 100)
        allocator.alloc(first, now=0.0)
        mapping2 = allocator.alloc(second, now=0.0)  # same open page
        shared = mapping2.shares[0].run
        m.unmap_run(shared, now=0.0)
        allocator.free(first, now=0.0)
        allocator.free(second, now=0.0)
        assert allocator.live_tensor_bytes == 0
