"""Op and TensorAccess validation and accounting."""

import pytest

from repro.dnn.ops import Op, TensorAccess
from repro.dnn.tensor import Tensor, TensorKind


def tensor(nbytes=1000):
    return Tensor(tid=0, name="t", nbytes=nbytes, kind=TensorKind.ACTIVATION)


class TestTensorAccess:
    def test_validation(self):
        t = tensor()
        with pytest.raises(ValueError):
            TensorAccess(t, 0, False)
        with pytest.raises(ValueError):
            TensorAccess(t, 1001, False)  # larger than the tensor
        with pytest.raises(ValueError):
            TensorAccess(t, 10, False, passes=0)

    def test_total_bytes(self):
        access = TensorAccess(tensor(), 100, False, passes=4)
        assert access.total_bytes == 400


class TestOp:
    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Op("f", flops=-1.0)

    def test_byte_accounting(self):
        t = tensor()
        op = Op(
            "f",
            flops=1.0,
            accesses=[
                TensorAccess(t, 100, is_write=False, passes=2),
                TensorAccess(t, 50, is_write=True),
            ],
        )
        assert op.bytes_read == 200
        assert op.bytes_written == 50

    def test_tensors_unique_in_order(self):
        a = tensor()
        b = Tensor(tid=1, name="b", nbytes=10, kind=TensorKind.TEMP)
        op = Op(
            "f",
            flops=1.0,
            accesses=[
                TensorAccess(a, 10, False),
                TensorAccess(b, 10, False),
                TensorAccess(a, 10, True),
            ],
        )
        assert [t.tid for t in op.tensors()] == [0, 1]
