"""SwapAdvisor's genetic algorithm: budget, convergence, determinism."""

import pytest

from repro.baselines.swapadvisor import SwapAdvisorPolicy
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM
from repro.models import build_model


def plan_with(population=24, generations=12, seed=7, batch=2048):
    policy = SwapAdvisorPolicy(seed=seed, population=population, generations=generations)
    policy.bind(
        Machine.for_platform(GPU_HM, fast_capacity=4 * 1024**3),
        build_model("dcgan", batch_size=batch),
    )
    return policy.plan


class TestGA:
    def test_more_generations_never_worse(self):
        """Elitism makes best-of-population fitness monotone in budget."""
        short = plan_with(generations=2)
        long = plan_with(generations=20)
        assert long.fitness <= short.fitness

    def test_fitness_is_a_time_estimate(self):
        plan = plan_with()
        assert plan.fitness > 0

    def test_empty_candidate_pool_when_model_fits(self):
        plan = plan_with(batch=64)  # tiny: fits device memory
        assert plan.swap == {}

    def test_swap_set_under_pressure(self):
        plan = plan_with(batch=2048)
        assert plan.swap, "an oversubscribed model must swap something"
        for tid, lead in plan.swap.items():
            assert 1 <= lead <= 4

    def test_seeded_determinism_across_budgets(self):
        assert plan_with(seed=3).swap == plan_with(seed=3).swap
