"""Unified Memory: LRU eviction order and the demand-paging tax."""

import pytest

from repro.baselines.um import UnifiedMemoryPolicy
from repro.dnn.executor import Executor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM
from repro.models import build_model


class TestLRU:
    def test_least_recently_used_evicted_first(self):
        machine = Machine.for_platform(GPU_HM, fast_capacity=32 * GPU_HM.page_size)
        policy = UnifiedMemoryPolicy()
        policy.bind(machine, build_model("dcgan", batch_size=8))

        old = machine.page_table.map_run(12, DeviceKind.FAST)
        recent = machine.page_table.map_run(12, DeviceKind.FAST)
        machine.fast.allocate(24 * machine.page_size)
        old.initialized = recent.initialized = True
        policy._last_access[old.vpn] = 1.0
        policy._last_access[recent.vpn] = 2.0

        incoming = machine.page_table.map_run(12, DeviceKind.SLOW)
        machine.slow.allocate(12 * machine.page_size)
        incoming.initialized = True
        stall = policy.ensure_resident(incoming, now=3.0)
        assert stall > 0
        machine.migration.sync(float("inf"))
        # The stale run left; the recently-used one stayed.
        assert old.device is DeviceKind.SLOW
        assert recent.device is DeviceKind.FAST
        assert incoming.device is DeviceKind.FAST

    def test_fault_group_overhead_scales_with_size(self):
        machine = Machine.for_platform(GPU_HM)
        policy = UnifiedMemoryPolicy()
        policy.bind(machine, build_model("dcgan", batch_size=8))

        def demand_fetch(npages):
            run = machine.page_table.map_run(npages, DeviceKind.SLOW)
            machine.slow.allocate(npages * machine.page_size)
            run.initialized = True
            now = machine.demand_channel.next_free
            return policy.ensure_resident(run, now=now)

        small = demand_fetch(16)
        large = demand_fetch(256)
        raw_ratio = 256 / 16
        # Overhead grows with the page count, on top of the raw transfer.
        assert large > small
        groups_small = -(-16 * machine.page_size // policy.FAULT_GROUP_BYTES)
        expected_small_overhead = groups_small * policy.FAULT_SERVICE_TIME
        assert small >= expected_small_overhead
