"""AutoTM: offline plan, exposed CPU movement, async GPU schedule."""

import pytest

from repro.baselines.autotm import AutoTMPolicy, plan_fast_sets
from repro.baselines.simple import SlowOnlyPolicy
from repro.dnn.executor import Executor
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM
from repro.models import build_model


def run_autotm(platform=OPTANE_HM, model="resnet32", batch=64, fast_fraction=0.2, steps=3):
    graph = build_model(model, batch_size=batch)
    fast_capacity = None
    if fast_fraction is not None:
        fast_capacity = int(graph.peak_memory_bytes() * fast_fraction)
    machine = Machine.for_platform(platform, fast_capacity=fast_capacity)
    policy = AutoTMPolicy()
    executor = Executor(graph, machine, policy)
    return graph, machine, policy, executor.run_steps(steps)


class TestPlan:
    def test_plan_respects_budget(self):
        graph = build_model("resnet32", batch_size=64)
        capacity = 50 * 1024 * 1024
        plans = plan_fast_sets(graph, capacity)
        assert len(plans) == graph.num_layers
        by_tid = {t.tid: t for t in graph.tensors}
        from repro.baselines.autotm import PLAN_CAPACITY_FRACTION

        for wanted in plans:
            total = sum(by_tid[tid].nbytes for tid in wanted)
            assert total <= capacity * PLAN_CAPACITY_FRACTION

    def test_plan_prefers_hotter_tensors(self):
        graph = build_model("resnet32", batch_size=64)
        plans = plan_fast_sets(graph, 10 * 1024 * 1024)
        by_tid = {t.tid: t for t in graph.tensors}
        for layer, wanted in zip(graph.layers, plans):
            if not wanted:
                continue
            chosen_touches = [
                by_tid[tid].layer_touches.get(layer.index, 0) for tid in wanted
            ]
            assert min(chosen_touches) > 0

    def test_short_lived_excluded_from_plan(self):
        graph = build_model("resnet32", batch_size=64)
        plans = plan_fast_sets(graph, 1 << 30)
        by_tid = {t.tid: t for t in graph.tensors}
        for wanted in plans:
            assert not any(by_tid[tid].short_lived for tid in wanted)


class TestCPUExecution:
    def test_movement_is_exposed_on_cpu(self):
        """§VII-B: all AutoTM movement sits on the critical path."""
        graph, machine, policy, results = run_autotm()
        assert policy.exposed
        managed = results[-1]
        assert managed.stall_time > 0
        assert managed.migrated_bytes > 0

    def test_beats_slow_only(self):
        graph, machine, policy, results = run_autotm()
        slow = Executor(
            build_model("resnet32", batch_size=64), Machine(OPTANE_HM), SlowOnlyPolicy()
        ).run_step()
        assert results[-1].duration < slow.duration


class TestGPUExecution:
    def test_gpu_variant_is_async(self):
        graph, machine, policy, results = run_autotm(
            platform=GPU_HM, model="dcgan", batch=512, fast_fraction=None
        )
        assert not policy.exposed

    def test_gpu_offload_schedule_built_under_pressure(self):
        graph, machine, policy, results = run_autotm(
            platform=GPU_HM, model="dcgan", batch=4096, fast_fraction=None
        )
        assert policy._offload_at
        assert policy._prefetch_at

    def test_no_offload_when_model_fits(self):
        """Pressure-proportional planning: a model inside device memory
        moves nothing (the ILP's optimum)."""
        graph, machine, policy, results = run_autotm(
            platform=GPU_HM, model="dcgan", batch=256, fast_fraction=None
        )
        assert not policy._offload_at
        assert results[-1].migrated_bytes == 0

    def test_exposed_override(self):
        graph = build_model("dcgan", batch_size=64)
        machine = Machine(GPU_HM)
        policy = AutoTMPolicy(exposed=True)
        policy.bind(machine, graph)
        assert policy.exposed
