"""Table I's claims, checked against the implementations themselves."""

import inspect

import pytest

from repro.baselines.features import COLUMNS, FEATURES, feature_table
from repro.baselines.registry import POLICIES


class TestMatrixStructure:
    def test_every_managed_policy_has_a_row(self):
        expected = set(POLICIES) - {"slow-only", "fast-only"}
        assert set(FEATURES) == expected

    def test_render_includes_every_system(self):
        text = feature_table()
        for name in FEATURES:
            assert name in text

    def test_sentinel_rows_claim_everything(self):
        for name in ("sentinel", "sentinel-gpu"):
            row = FEATURES[name]
            for field, _ in COLUMNS[:-2]:
                assert getattr(row, field), (name, field)


class TestClaimsMatchImplementations:
    def test_graph_agnostic_policies_ignore_tensor_kind(self):
        """A policy claiming graph-agnosticism must not branch on
        TensorKind (vDNN, the one non-agnostic system, does)."""
        import repro.baselines.vdnn as vdnn_mod
        import repro.core.runtime as sentinel_mod
        import repro.baselines.ial as ial_mod

        assert "TensorKind" in inspect.getsource(vdnn_mod)
        assert not FEATURES["vdnn"].graph_agnostic
        for module, name in ((sentinel_mod, "sentinel"), (ial_mod, "ial")):
            source = inspect.getsource(module)
            assert "kind is TensorKind" not in source, name
            assert FEATURES[name].graph_agnostic

    def test_counting_policies_read_fault_counters(self):
        """Only Sentinel's profile carries per-tensor access counts."""
        from repro.core.profile import TensorProfile

        assert hasattr(TensorProfile(0, "t", 1, 0, 0, False), "touches_by_layer")
        assert FEATURES["sentinel"].counts_memory_accesses
        assert not FEATURES["ial"].counts_memory_accesses

    def test_platform_applicability_matches_registry(self):
        from repro.baselines.registry import CPU_ONLY, GPU_ONLY

        for name, row in FEATURES.items():
            if name in CPU_ONLY:
                assert row.cpu and not row.gpu, name
            if name in GPU_ONLY:
                assert row.gpu and not row.cpu, name

    def test_false_sharing_avoidance_is_sentinels_alone(self):
        others = [
            name for name, row in FEATURES.items() if row.avoids_false_sharing
        ]
        assert set(others) == {"sentinel", "sentinel-gpu"}
