"""IAL: FIFO active list behaviour."""

import pytest

from repro.baselines.ial import IALPolicy
from repro.baselines.simple import SlowOnlyPolicy
from repro.dnn.executor import Executor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


def run_ial(model="resnet32", batch=64, fast_fraction=0.2, steps=3):
    graph = build_model(model, batch_size=batch)
    peak = graph.peak_memory_bytes()
    machine = Machine.for_platform(OPTANE_HM, fast_capacity=int(peak * fast_fraction))
    policy = IALPolicy()
    executor = Executor(graph, machine, policy)
    return graph, machine, policy, executor.run_steps(steps)


class TestIAL:
    def test_promotes_on_access(self):
        graph, machine, policy, results = run_ial()
        assert results[-1].promoted_bytes > 0

    def test_evicts_fifo_under_pressure(self):
        graph, machine, policy, results = run_ial(fast_fraction=0.1)
        assert results[-1].demoted_bytes > 0
        assert machine.fast.used <= machine.fast.capacity

    def test_faster_than_slow_only(self):
        graph, machine, policy, results = run_ial()
        slow = Executor(
            build_model("resnet32", batch_size=64),
            Machine(OPTANE_HM),
            SlowOnlyPolicy(),
        ).run_step()
        assert results[-1].duration < slow.duration

    def test_arena_pages_persist_across_steps(self):
        """Arena page reuse: promoted runs stay DRAM-resident, so the next
        step's tensors can land in already-fast chunks without paying slow
        passes again."""
        graph, machine, policy, results = run_ial(steps=4)
        # Promoted arena pages remain mapped and DRAM-resident between
        # steps (tensors were freed, the pages were not).
        fast_runs = machine.page_table.runs_on(DeviceKind.FAST)
        assert fast_runs, "the active list promoted something that persists"
        assert machine.fast.used > 0
        # And the steady state serves a substantial share from fast memory.
        steady = results[-1]
        assert steady.bytes_fast > 0.3 * (steady.bytes_fast + steady.bytes_slow)

    def test_migrates_more_than_it_benefits(self):
        """The defining waste: IAL moves lots of bytes (Table IV) but lags
        Sentinel (Figure 7) because many promotions arrive too late or move
        soon-dead pages."""
        graph, machine, policy, results = run_ial(fast_fraction=0.2)
        assert results[-1].migrated_bytes > 0

    def test_headroom_kept_free(self):
        graph, machine, policy, results = run_ial(fast_fraction=0.2)
        # Some slack must exist right after a steady-state step completes
        # (drain the engine first).
        machine.migration.sync(float("inf"))
