"""Pressure-proportional offload selection shared by the GPU baselines."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.common import (
    PLAN_BUDGET_FRACTION,
    SAVINGS_MARGIN,
    offload_deficit,
    select_for_pressure,
)


class TestDeficit:
    def test_zero_when_model_fits(self):
        assert offload_deficit(peak_bytes=800, capacity_bytes=1000) == 0

    def test_positive_when_over_budget(self):
        deficit = offload_deficit(peak_bytes=2000, capacity_bytes=1000)
        assert deficit == 2000 - int(1000 * PLAN_BUDGET_FRACTION)


class TestSelection:
    def test_no_pressure_selects_nothing(self):
        chosen = select_for_pressure(
            [10, 20, 30], peak_bytes=50, capacity_bytes=1000, size_of=lambda c: c
        )
        assert chosen == []

    def test_largest_first_by_default(self):
        chosen = select_for_pressure(
            [10, 100, 50],
            peak_bytes=1000,
            capacity_bytes=1000,
            size_of=lambda c: c,
        )
        assert chosen[0] == 100

    def test_stops_once_deficit_covered(self):
        # deficit = 1000 - 900 = 100, target = 130 with the margin.
        chosen = select_for_pressure(
            [100, 100, 100, 100],
            peak_bytes=1000,
            capacity_bytes=1000,
            size_of=lambda c: c,
        )
        assert len(chosen) == 2  # 200 >= 130, 100 < 130

    def test_returns_all_when_deficit_uncoverable(self):
        chosen = select_for_pressure(
            [10, 10],
            peak_bytes=10_000,
            capacity_bytes=1000,
            size_of=lambda c: c,
        )
        assert len(chosen) == 2

    def test_custom_priority_respected(self):
        chosen = select_for_pressure(
            [("a", 50), ("b", 50)],
            peak_bytes=1000,
            capacity_bytes=1000,
            size_of=lambda c: c[1],
            priority=lambda c: c[0],  # alphabetical
        )
        assert chosen[0][0] == "a"

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10**6), max_size=50),
        peak=st.integers(min_value=1, max_value=10**8),
        capacity=st.integers(min_value=1, max_value=10**8),
    )
    def test_selection_invariants(self, sizes, peak, capacity):
        chosen = select_for_pressure(
            sizes, peak_bytes=peak, capacity_bytes=capacity, size_of=lambda c: c
        )
        deficit = offload_deficit(peak, capacity)
        if deficit <= 0:
            assert chosen == []
            return
        assert len(chosen) <= len(sizes)
        savings = sum(chosen)
        # Either the target is covered or everything was taken.
        assert savings >= deficit * SAVINGS_MARGIN or len(chosen) == len(sizes) or (
            # the selector stops as soon as the running total crosses the
            # target, so the last pick may overshoot from below
            savings - chosen[-1] < deficit * SAVINGS_MARGIN
        )
