"""Bounds, first-touch NUMA, and Memory Mode policies."""

import pytest

from repro.baselines.simple import (
    FastOnlyPolicy,
    FirstTouchNUMAPolicy,
    MemoryModePolicy,
    SlowOnlyPolicy,
)
from repro.dnn.executor import Executor
from repro.mem.devices import DeviceFullError, DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


def run(policy, model="resnet32", batch=64, fast_capacity=None, steps=2):
    graph = build_model(model, batch_size=batch)
    machine = Machine.for_platform(OPTANE_HM, fast_capacity=fast_capacity)
    executor = Executor(graph, machine, policy)
    return machine, executor.run_steps(steps)[-1]


class TestBounds:
    def test_fast_only_beats_slow_only(self):
        _, fast = run(FastOnlyPolicy())
        _, slow = run(SlowOnlyPolicy())
        assert slow.duration > 2 * fast.duration

    def test_slow_only_never_uses_fast(self):
        machine, result = run(SlowOnlyPolicy())
        assert result.peak_fast == 0
        assert result.bytes_fast == 0

    def test_fast_only_oom_when_fast_too_small(self):
        graph = build_model("resnet32", batch_size=64)
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 20)
        with pytest.raises(DeviceFullError):
            # Preallocation (weights) may already overflow; otherwise the
            # first step's activations will.
            Executor(graph, machine, FastOnlyPolicy()).run_step()


class TestFirstTouch:
    def test_fills_fast_then_spills(self):
        graph = build_model("resnet32", batch_size=64)
        peak = graph.peak_memory_bytes()
        machine, result = run(
            FirstTouchNUMAPolicy(), fast_capacity=int(peak * 0.3)
        )
        assert result.bytes_fast > 0
        assert result.bytes_slow > 0

    def test_everything_fast_when_it_fits(self):
        machine, result = run(FirstTouchNUMAPolicy())
        assert result.bytes_slow == 0

    def test_between_bounds_when_constrained(self):
        graph = build_model("resnet32", batch_size=64)
        peak = graph.peak_memory_bytes()
        _, fast = run(FastOnlyPolicy())
        _, slow = run(SlowOnlyPolicy())
        _, ft = run(FirstTouchNUMAPolicy(), fast_capacity=int(peak * 0.3))
        assert fast.duration < ft.duration < slow.duration


class TestMemoryMode:
    def test_all_pages_nominally_slow(self):
        machine, result = run(MemoryModePolicy(), fast_capacity=1 << 30)
        assert machine.page_table.bytes_on(DeviceKind.FAST) == 0

    def test_cache_hits_recorded(self):
        graph = build_model("resnet32", batch_size=64)
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 30)
        executor = Executor(graph, machine, MemoryModePolicy())
        executor.run_step()
        assert machine.dram_cache.hits > 0
        assert machine.dram_cache.misses > 0

    def test_faster_than_slow_only_with_big_cache(self):
        _, slow = run(SlowOnlyPolicy())
        _, mm = run(MemoryModePolicy())
        assert mm.duration < slow.duration

    def test_small_cache_degrades_toward_slow(self):
        graph = build_model("resnet32", batch_size=64)
        peak = graph.peak_memory_bytes()
        _, big = run(MemoryModePolicy(), fast_capacity=peak * 2)
        _, small = run(MemoryModePolicy(), fast_capacity=max(4096, int(peak * 0.05)))
        assert small.duration > big.duration

    def test_freed_tensors_invalidate_cache_lines(self):
        graph = build_model("dcgan", batch_size=8)
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 30)
        executor = Executor(graph, machine, MemoryModePolicy())
        executor.run_step()
        # Only preallocated tensors' runs may remain cached after the step.
        live_runs = {e.vpn for e in machine.page_table.entries()}
        assert set(machine.dram_cache._lines) <= live_runs
