"""GPU baselines: UM, vDNN, SwapAdvisor, Capuchin."""

import pytest

from repro.baselines.capuchin import CapuchinPolicy
from repro.baselines.swapadvisor import SwapAdvisorPolicy, _find_candidates
from repro.baselines.um import UnifiedMemoryPolicy
from repro.baselines.vdnn import UnsupportedModelError, VDNNPolicy
from repro.dnn.executor import Executor
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM
from repro.models import build_model


def run_gpu(policy, model="dcgan", batch=1024, fast_capacity=4 * 1024**3, steps=3):
    graph = build_model(model, batch_size=batch)
    machine = Machine.for_platform(GPU_HM, fast_capacity=fast_capacity)
    executor = Executor(graph, machine, policy)
    return graph, machine, executor.run_steps(steps)


class TestUnifiedMemory:
    def test_on_demand_migration_with_stalls(self):
        graph, machine, results = run_gpu(UnifiedMemoryPolicy())
        managed = results[-1]
        assert managed.promoted_bytes > 0
        assert managed.stall_time > 0  # everything exposed

    def test_respects_capacity(self):
        graph, machine, results = run_gpu(UnifiedMemoryPolicy())
        assert machine.fast.used <= machine.fast.capacity

    def test_fault_service_overhead_charged(self):
        """Demand paging pays per-fault-group overhead beyond raw PCIe."""
        graph, machine, results = run_gpu(UnifiedMemoryPolicy())
        from repro.baselines.autotm import AutoTMPolicy

        _, _, planned = run_gpu(AutoTMPolicy())
        assert results[-1].duration > planned[-1].duration


class TestVDNN:
    def test_rejects_recurrent_models(self):
        graph = build_model("lstm", batch_size=8)
        machine = Machine(GPU_HM)
        with pytest.raises(UnsupportedModelError):
            VDNNPolicy().bind(machine, graph)

    def test_rejects_bert(self):
        graph = build_model("bert-base", batch_size=2)
        machine = Machine(GPU_HM)
        with pytest.raises(UnsupportedModelError):
            VDNNPolicy().bind(machine, graph)

    def test_offloads_feature_maps_on_cnns(self):
        graph, machine, results = run_gpu(VDNNPolicy())
        assert results[-1].demoted_bytes > 0
        assert results[-1].promoted_bytes > 0

    def test_schedule_targets_only_activations(self):
        graph = build_model("dcgan", batch_size=256)
        machine = Machine(GPU_HM)
        policy = VDNNPolicy()
        policy.bind(machine, graph)
        from repro.dnn.tensor import TensorKind

        by_tid = {t.tid: t for t in graph.tensors}
        for tids in policy._offload_at.values():
            for tid in tids:
                assert by_tid[tid].kind is TensorKind.ACTIVATION


class TestSwapAdvisor:
    def test_ga_is_deterministic_per_seed(self):
        graph = build_model("dcgan", batch_size=256)
        plans = []
        for _ in range(2):
            policy = SwapAdvisorPolicy(seed=11)
            policy.bind(Machine(GPU_HM), build_model("dcgan", batch_size=256))
            plans.append(policy.plan.swap)
        assert plans[0] == plans[1]

    def test_different_seeds_may_differ(self):
        def plan_for(seed):
            policy = SwapAdvisorPolicy(seed=seed)
            policy.bind(Machine(GPU_HM), build_model("dcgan", batch_size=256))
            return policy.plan

        # Fitness never worsens with a better plan; just confirm both run.
        assert plan_for(1).fitness > 0
        assert plan_for(2).fitness > 0

    def test_candidates_have_forward_backward_gap(self):
        graph = build_model("dcgan", batch_size=64)
        for candidate in _find_candidates(graph):
            assert candidate.use_layer > candidate.offload_layer + 1

    def test_executes_plan(self):
        graph, machine, results = run_gpu(SwapAdvisorPolicy())
        assert results[-1].migrated_bytes > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SwapAdvisorPolicy(population=1)
        with pytest.raises(ValueError):
            SwapAdvisorPolicy(generations=0)


class TestCapuchin:
    def test_mixes_swap_and_recompute(self):
        graph = build_model("dcgan", batch_size=1024)
        machine = Machine.for_platform(GPU_HM, fast_capacity=4 * 1024**3)
        policy = CapuchinPolicy()
        executor = Executor(graph, machine, policy)
        executor.run_steps(3)
        actions = {d.action for d in policy._decisions.values()}
        assert "swap" in actions or "recompute" in actions

    def test_recompute_time_accounted(self):
        graph = build_model("dcgan", batch_size=2048)
        machine = Machine.for_platform(GPU_HM, fast_capacity=6 * 1024**3)
        policy = CapuchinPolicy()
        executor = Executor(graph, machine, policy)
        results = executor.run_steps(3)
        if any(d.action == "recompute" for d in policy._decisions.values()):
            assert policy.recompute_time > 0

    def test_recompute_spends_no_bandwidth(self):
        """Discard/materialize must not touch the migration channels."""
        graph = build_model("dcgan", batch_size=1024)
        machine = Machine.for_platform(GPU_HM, fast_capacity=4 * 1024**3)
        policy = CapuchinPolicy()
        executor = Executor(graph, machine, policy)
        executor.run_steps(2)
        discarded = machine.stats.counter("migration.discarded_bytes").value
        if discarded:
            # Discarded bytes never appear in demote-channel traffic.
            assert machine.stats.counter("migration.demoted_bytes").value < (
                discarded + machine.stats.counter("migration.demoted_bytes").value
            )

    def test_capacity_respected(self):
        graph, machine, results = run_gpu(CapuchinPolicy(), batch=2048, fast_capacity=6 * 1024**3)
        assert machine.fast.used <= machine.fast.capacity
