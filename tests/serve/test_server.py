"""Serving lifecycle: overload, retry, timeout, failure episodes, reports.

Scenario tests run tiny synthetic graphs (sub-millisecond simulated steps)
so the suite stays fast; the CLI smoke covers the zoo-model scale.
"""

import json

import pytest

from repro.chaos import Episode, EpisodeConfig, InvariantAuditor
from repro.dnn.graph import GraphBuilder
from repro.harness.report import format_serve
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.obs import EventTracer, canonical_digest
from repro.obs.query import TraceQuery
from repro.serve import (
    JobTemplate,
    PoissonArrivals,
    ServeConfig,
    Server,
    TraceArrivals,
    serve,
)


def tiny_graph(weight_bytes=65536, act_bytes=65536):
    b = GraphBuilder("tiny", batch_size=1)
    w = b.weight("w", weight_bytes)
    with b.layer("l0"):
        out = b.tensor("out", act_bytes)
        b.op("mm", flops=1e6, reads=[w], writes=[out])
    return b.finish()


def template(name="t", steps=1, slo=10.0, weight=1.0):
    return JobTemplate(
        name=name,
        graph=tiny_graph(),
        policy="ial",
        steps=steps,
        slo=slo,
        weight=weight,
    )


def burst(count, templates=None, times=None):
    """TraceArrivals: ``count`` jobs of one template, default all at t=0."""
    templates = templates if templates is not None else (template(),)
    name = templates[0].name
    times = times if times is not None else [0.0] * count
    return TraceArrivals(
        trace=tuple((t, name) for t in times), templates=templates
    )


def job_duration():
    """Simulated seconds one tiny job takes alone (measured, not assumed)."""
    report = serve(burst(1), ServeConfig(slots=1))
    assert report.completed == 1
    return report.makespan


class TestDeterminism:
    def _run(self, episodes=None):
        arrivals = PoissonArrivals(
            rate=200.0, horizon=0.05, templates=(template(),), seed=9
        )
        cfg = ServeConfig(
            seed=9, slots=2, admission="edf", queue_limit=3, episodes=episodes
        )
        tracer = EventTracer()
        server = Server(arrivals, cfg, tracer=tracer)
        return server.run(), tracer

    def test_steady_runs_are_byte_identical(self):
        r1, t1 = self._run()
        r2, t2 = self._run()
        assert r1.to_json() == r2.to_json()
        assert canonical_digest(t1.events) == canonical_digest(t2.events)

    def test_failure_runs_are_byte_identical(self):
        episodes = EpisodeConfig(
            seed=9, horizon=0.05, machine_mtbf=0.02, machine_mttr=0.005
        )
        r1, t1 = self._run(episodes)
        r2, t2 = self._run(episodes)
        assert r1.to_json() == r2.to_json()
        assert canonical_digest(t1.events) == canonical_digest(t2.events)


class TestOverload:
    def test_excess_load_is_shed_not_queued_unboundedly(self):
        cfg = ServeConfig(slots=1, queue_limit=3, max_attempts=1)
        report = serve(burst(10), cfg)
        assert report.counts["serve.shed"] > 0
        assert report.counts["serve.shed.queue-full"] > 0
        # 1 running + 3 queued is all the system accepts from a t=0 burst.
        assert report.completed <= 4
        assert report.completed + report.counts["serve.shed.permanent"] == 10

    def test_admitted_latency_stays_bounded(self):
        d = job_duration()
        cfg = ServeConfig(slots=1, queue_limit=3, max_attempts=1)
        report = serve(burst(10), cfg)
        # Worst admitted job waits behind the slot plus the full queue.
        assert report.p99 <= (cfg.queue_limit + 2) * d

    def test_every_job_is_accounted(self):
        cfg = ServeConfig(slots=1, queue_limit=2, max_attempts=1)
        report = serve(burst(8), cfg)
        states = [j["state"] for j in report.jobs]
        assert all(s in ("completed", "shed") for s in states)
        assert len(states) == 8


class TestRetryBackoff:
    def test_shed_jobs_retry_then_give_up(self):
        cfg = ServeConfig(
            slots=1,
            queue_limit=1,
            max_attempts=3,
            backoff_base=1e-5,
            backoff_cap=1e-4,
        )
        report = serve(burst(6), cfg)
        assert report.counts["serve.retry"] > 0
        gave_up = [j for j in report.jobs if j["state"] == "shed"]
        assert all(j["attempts"] == 3 for j in gave_up)

    def test_backoff_lets_retries_land_after_drain(self):
        d = job_duration()
        # Backoff long enough to outlive the head-of-line job: the retry
        # arrives to a drained queue and completes.
        cfg = ServeConfig(
            slots=1,
            queue_limit=1,
            max_attempts=4,
            backoff_base=2 * d,
            backoff_cap=20 * d,
        )
        report = serve(burst(3), cfg)
        assert report.counts["serve.retry"] > 0
        assert report.completed == 3


class TestTimeout:
    def test_timeout_interrupts_and_frees_memory(self):
        d = job_duration()
        arrivals = burst(1, templates=(template(steps=50),))
        cfg = ServeConfig(slots=1, timeout=2 * d)
        server = Server(arrivals, cfg)
        report = server.run()
        assert report.counts["serve.timeout"] == 1
        assert report.jobs[0]["state"] == "timed-out"
        assert report.completed == 0
        machine = server.machine
        assert machine.fast.used == 0 and machine.slow.used == 0
        assert len(machine.page_table) == 0
        assert InvariantAuditor(machine).audit() is None

    def test_no_timeout_by_default(self):
        report = serve(burst(2), ServeConfig(slots=1))
        assert report.completed == 2
        assert "serve.timeout" not in report.counts


class TestFailureEpisodes:
    def _outage(self, d, restart_budget=2):
        """One machine-offline window landing mid-first-job."""
        arrivals = burst(3, times=[0.0, 0.0, 0.0])
        episodes = (
            Episode("machine-offline", start=d * 0.5, duration=d * 0.4),
        )
        cfg = ServeConfig(
            slots=1,
            queue_limit=4,
            restart_budget=restart_budget,
            episodes=episodes,
        )
        server = Server(arrivals, cfg)
        return server.run(), server

    def test_interrupted_jobs_restart_and_complete(self):
        d = job_duration()
        report, server = self._outage(d)
        assert report.episodes == 1
        assert report.counts["serve.interrupted"] >= 1
        assert report.counts["serve.restart"] >= 1
        assert report.completed == 3
        machine = server.machine
        assert machine.online
        assert machine.fast.used == 0 and machine.slow.used == 0
        assert InvariantAuditor(machine).audit() is None

    def test_restart_resumes_from_checkpoint(self):
        from repro.sim.engine import EventKind

        # Multi-step job; the outage lands in the steady tail (the first
        # step carries the cold-start migrations, so it dominates), and the
        # restarted attempt must not re-run completed steady steps.
        arrivals = burst(1, templates=(template(steps=4),))
        d4 = serve(burst(1, templates=(template(steps=4),)),
                   ServeConfig(slots=1)).makespan
        episodes = (
            Episode("machine-offline", start=d4 * 0.9, duration=d4 * 0.05),
        )
        cfg = ServeConfig(slots=1, episodes=episodes)
        server = Server(arrivals, cfg)
        marks = []
        server.engine.subscribe(
            EventKind.SERVE, lambda ev: marks.append((ev.name, dict(ev.payload)))
        )
        report = server.run()
        job = report.jobs[0]
        assert job["state"] == "completed"
        assert job["restarts"] == 1
        assert job["completed_steps"] == 4
        (restart,) = [p for n, p in marks if n == "restart"]
        assert restart["checkpoint"] >= 1
        redispatch = [p for n, p in marks if n == "dispatch"][-1]
        assert redispatch["remaining_steps"] == 4 - restart["checkpoint"]

    def test_exhausted_restart_budget_fails_permanently(self):
        d = job_duration()
        report, _ = self._outage(d, restart_budget=0)
        assert report.counts["serve.failed"] >= 1
        failed = [j for j in report.jobs if j["state"] == "failed"]
        assert failed and all(not j["slo_met"] for j in failed)


class TestEdf:
    def test_expires_jobs_whose_deadline_passed_in_queue(self):
        d = job_duration()
        hog = template(name="hog", steps=8, slo=100.0)
        tight = JobTemplate(
            name="tight", graph=tiny_graph(), policy="ial", slo=d, weight=1.0
        )
        arrivals = TraceArrivals(
            trace=((0.0, "hog"), (0.0, "tight")), templates=(hog, tight)
        )
        cfg = ServeConfig(slots=1, admission="edf", queue_limit=4)
        report = serve(arrivals, cfg)
        assert report.counts["serve.expired"] == 1
        states = {j["name"]: j["state"] for j in report.jobs}
        assert states["hog#0"] == "completed"
        assert states["tight#1"] == "expired"


class TestObservability:
    def test_counts_mirror_machine_stats(self):
        arrivals = burst(6)
        cfg = ServeConfig(slots=1, queue_limit=2, max_attempts=2,
                          backoff_base=1e-5, backoff_cap=1e-4)
        server = Server(arrivals, cfg)
        report = server.run()
        snapshot = server.machine.stats.counters()
        for key, value in report.counts.items():
            assert snapshot[key] == value, key

    def test_lifecycle_shows_up_in_trace(self):
        tracer = EventTracer()
        cfg = ServeConfig(slots=1, queue_limit=2, max_attempts=1)
        server = Server(burst(4), cfg, tracer=tracer)
        server.run()
        query = TraceQuery(tracer.events)
        serve_events = query.filter(cat="serve")
        names = {e.name for e in serve_events}
        assert {"admit", "dispatch", "complete", "shed"} <= names
        # Each dispatched attempt closes a job-attempt span on its own track.
        spans = query.spans(cat="serve")
        attempt_spans = [s for s in spans if s.name == "job-attempt"]
        # t=0 burst of 4: one dispatches instantly, two queue, one sheds.
        assert len(attempt_spans) == 3
        assert {s.track for s in attempt_spans} == {"t#0", "t#1", "t#2"}

    def test_serve_events_reach_engine_subscribers(self):
        from repro.sim.engine import EventKind

        seen = []
        arrivals = burst(2)
        server = Server(arrivals, ServeConfig(slots=1))
        server.engine.subscribe(
            EventKind.SERVE, lambda ev: seen.append(ev.name)
        )
        server.run()
        assert "admit" in seen and "complete" in seen


class TestReport:
    def test_json_schema(self):
        report = serve(burst(3), ServeConfig(slots=2))
        payload = json.loads(report.to_json())
        assert payload["schema"] == "serve-report/v1"
        for key in (
            "seed",
            "makespan",
            "total_jobs",
            "completed",
            "slo_met",
            "slo_attainment",
            "goodput",
            "latency",
            "counts",
            "episodes",
            "jobs",
        ):
            assert key in payload, key
        assert set(payload["latency"]) == {"p50", "p95", "p99", "mean", "max"}
        assert payload["total_jobs"] == 3

    def test_percentiles_are_nearest_rank(self):
        from repro.serve.server import ServeReport

        report = ServeReport(
            seed=0, makespan=1.0, latencies=[0.1, 0.2, 0.3, 0.4]
        )
        assert report.p50 == 0.2
        assert report.p99 == 0.4
        assert report.mean_latency == pytest.approx(0.25)

    def test_format_serve_is_stable_text(self):
        report = serve(burst(2), ServeConfig(slots=1))
        text = format_serve(report)
        assert "SLO attainment" in text
        assert "serve.shed" in text  # zero counters still print
        assert format_serve(report) == text


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="slots"):
            ServeConfig(slots=0)
        with pytest.raises(ValueError, match="max_attempts"):
            ServeConfig(max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            ServeConfig(timeout=0.0)
        with pytest.raises(ValueError, match="backoff"):
            ServeConfig(backoff_base=0.5, backoff_cap=0.1)
        with pytest.raises(ValueError, match="restart_budget"):
            ServeConfig(restart_budget=-1)

    def test_explicit_machine_needs_its_own_tracer(self):
        machine = Machine.for_platform(OPTANE_HM)
        with pytest.raises(ValueError, match="tracer"):
            Server(burst(1), ServeConfig(), machine=machine, tracer=EventTracer())


class TestUncorrectableErrors:
    """A UE past the recovery ladder fails the job, never the machine."""

    def _storm(self, recovery="none", restart_budget=0, seed=3, tracer=None):
        from repro.mem.ras import RASConfig

        ras = RASConfig(seed=seed, ue_rate=2.0, recovery=recovery)
        arrivals = burst(4, templates=(template(steps=4),))
        cfg = ServeConfig(slots=1, restart_budget=restart_budget)
        server = Server(arrivals, cfg, ras=ras, tracer=tracer)
        return server.run(), server

    def test_exhausted_ladder_fails_only_the_owning_job(self):
        report, server = self._storm()
        assert report.counts["serve.ue"] >= 1
        assert report.counts["serve.failed"] == report.counts["serve.ue"]
        # Blast radius: the machine survives and keeps serving — the other
        # jobs complete on it after the failure.
        assert server.machine.online
        assert report.completed >= 1
        assert report.completed + report.counts["serve.failed"] == 4
        # The departed jobs returned their capacity.
        machine = server.machine
        assert machine.fast.used == 0 and machine.slow.used == 0
        assert InvariantAuditor(machine).audit() is None

    def test_restart_budget_gives_ue_victims_another_attempt(self):
        report, server = self._storm(restart_budget=2)
        assert report.counts["serve.ue"] >= 1
        assert report.counts["serve.restart"] >= 1
        # Retired frames stay retired across the restart, but the retry
        # runs on healthy pages and completes.
        assert report.completed == 4
        assert server.machine.ras.retired_frames >= 1

    def test_remat_recovery_absorbs_the_same_storm(self):
        report, server = self._storm(recovery="remat")
        assert "serve.ue" not in report.counts
        assert report.completed == 4
        assert server.machine.ras.counts["ras.remat_events"] >= 1

    def test_ue_runs_are_byte_identical(self):
        r1, _ = self._storm()
        r2, _ = self._storm()
        assert r1.to_json() == r2.to_json()

    def test_ue_lifecycle_lands_in_trace(self):
        tracer = EventTracer()
        report, _ = self._storm(tracer=tracer)
        query = TraceQuery(tracer.events)
        fails = [e for e in query.filter(cat="serve") if e.name == "fail"]
        assert fails and all(
            e.args["reason"] == "ue-restart-budget-exhausted" for e in fails
        )
        assert query.filter(cat="ras").count() >= 1


class TestInsight:
    def _run(self, count=6, insight=None, tracer=None, **cfg_kwargs):
        from repro.obs import InsightCollector

        collector = insight if insight is not None else InsightCollector()
        arrivals = burst(count, times=[0.01 * i for i in range(count)])
        server = Server(
            arrivals,
            ServeConfig(slots=2, **cfg_kwargs),
            tracer=tracer,
            insight=collector,
        )
        report = server.run()
        return server, report, collector

    def test_job_tids_are_stable_and_unique(self):
        server, _, _ = self._run()
        tids = server.job_tids()
        assert tids["serve"] == 0
        assert len(set(tids.values())) == len(tids)
        # Schedule order, not completion order.
        job_names = [a.job_name for a in server.schedule]
        assert [tids[name] for name in job_names] == list(
            range(1, len(job_names) + 1)
        )

    def test_collector_finalized_with_serve_section(self):
        _, report, collector = self._run()
        artifact = collector.report()
        assert report.completed > 0
        serve_section = artifact["serve"]
        assert serve_section["jobs"] == report.total_jobs
        ok = sum(w["ok"] for w in serve_section["windows"])
        assert ok == report.slo_met

    def test_every_job_scope_is_closed(self):
        _, _, collector = self._run()
        assert collector._live == {}
        artifact = collector.report()
        scopes = {row["scope"] for row in artifact["tensors"]}
        assert scopes  # per-job scopes, never "main"
        assert "main" not in scopes
        for row in artifact["tensors"]:
            assert row["free"] is not None

    def test_shed_and_expired_jobs_count_in_slo_windows(self):
        from repro.obs import InsightCollector

        collector = InsightCollector()
        # Simultaneous burst against a single slot and a queue bound of 1:
        # most jobs shed permanently without ever touching the machine.
        arrivals = burst(12, times=[0.0] * 12)
        server = Server(
            arrivals,
            ServeConfig(slots=1, queue_limit=1, max_attempts=1),
            insight=collector,
        )
        report = server.run()
        assert report.counts.get("serve.shed.permanent", 0) > 0
        serve_section = collector.report()["serve"]
        assert serve_section["jobs"] == report.total_jobs

    def test_reservoir_bounds_trace_retention(self):
        from repro.obs import InsightCollector, InsightConfig

        tracer = EventTracer()
        collector = InsightCollector(InsightConfig(reservoir_size=2))
        server, report, _ = self._run(count=8, insight=collector, tracer=tracer)
        sampled = collector.report()["serve"]["sampled_jobs"]
        assert len(sampled) == 2
        retained = collector.retained_events(tracer.events)
        job_tracks = {
            event.track
            for event in retained
            if event.track in {a.job_name for a in server.schedule}
        }
        assert job_tracks <= set(sampled)
        # Machine-level tracks survive the filter untouched.
        serve_lane = [e for e in tracer.events if e.track == "serve"]
        assert [e for e in retained if e.track == "serve"] == serve_lane

    def test_insight_does_not_perturb_serve_report(self):
        arrivals = burst(4, times=[0.01 * i for i in range(4)])
        bare = Server(arrivals, ServeConfig(slots=2)).run()
        from repro.obs import InsightCollector

        arrivals2 = burst(4, times=[0.01 * i for i in range(4)])
        with_insight = Server(
            arrivals2, ServeConfig(slots=2), insight=InsightCollector()
        ).run()
        assert with_insight.to_json() == bare.to_json()

    def test_explicit_machine_requires_insight_on_machine(self):
        from repro.obs import InsightCollector

        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 24)
        with pytest.raises(ValueError, match="insight"):
            Server(
                burst(1),
                ServeConfig(),
                machine=machine,
                insight=InsightCollector(),
            )
