"""Arrival schedules: validation, determinism, trace replay."""

import pytest

from repro.serve.arrivals import JobTemplate, PoissonArrivals, TraceArrivals


def template(name="t", **kwargs):
    kwargs.setdefault("model", "mobilenet")
    return JobTemplate(name=name, **kwargs)


class TestJobTemplate:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobTemplate(name="t")
        from repro.models.zoo import build_model

        with pytest.raises(ValueError, match="exactly one"):
            JobTemplate(name="t", model="dcgan", graph=build_model("dcgan"))

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError, match="steps"):
            template(steps=0)
        with pytest.raises(ValueError, match="slo"):
            template(slo=0.0)
        with pytest.raises(ValueError, match="weight"):
            template(weight=-1.0)

    def test_builds_a_fresh_graph(self):
        t = template()
        assert t.build_graph() is not t.build_graph()


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(rate=0.0, horizon=1.0, templates=(template(),))
        with pytest.raises(ValueError, match="horizon"):
            PoissonArrivals(rate=1.0, horizon=0.0, templates=(template(),))
        with pytest.raises(ValueError, match="at least one"):
            PoissonArrivals(rate=1.0, horizon=1.0, templates=())
        with pytest.raises(ValueError, match="unique"):
            PoissonArrivals(
                rate=1.0, horizon=1.0, templates=(template("a"), template("a"))
            )

    def test_schedule_is_deterministic(self):
        cfg = dict(rate=50.0, horizon=1.0, templates=(template(),), seed=3)
        assert PoissonArrivals(**cfg).schedule() == PoissonArrivals(**cfg).schedule()

    def test_seed_changes_schedule(self):
        a = PoissonArrivals(rate=50.0, horizon=1.0, templates=(template(),), seed=1)
        b = PoissonArrivals(rate=50.0, horizon=1.0, templates=(template(),), seed=2)
        assert a.schedule() != b.schedule()

    def test_times_sorted_and_bounded(self):
        arrivals = PoissonArrivals(
            rate=100.0, horizon=0.5, templates=(template(),), seed=5
        ).schedule()
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < 0.5 for t in times)
        assert [a.index for a in arrivals] == list(range(len(arrivals)))

    def test_mix_draws_are_independent_of_arrival_times(self):
        # Adding a template must not shift *when* jobs arrive, only which
        # template each arrival draws.
        one = PoissonArrivals(
            rate=100.0, horizon=0.5, templates=(template("a"),), seed=5
        ).schedule()
        two = PoissonArrivals(
            rate=100.0,
            horizon=0.5,
            templates=(template("a"), template("b", weight=2.0)),
            seed=5,
        ).schedule()
        assert [a.time for a in one] == [a.time for a in two]
        assert {a.template.name for a in two} == {"a", "b"}

    def test_rate_scales_volume(self):
        slow = PoissonArrivals(
            rate=10.0, horizon=2.0, templates=(template(),), seed=5
        ).schedule()
        fast = PoissonArrivals(
            rate=100.0, horizon=2.0, templates=(template(),), seed=5
        ).schedule()
        assert len(fast) > len(slow) * 4


class TestTraceArrivals:
    def test_replays_exact_times(self):
        t = template()
        arrivals = TraceArrivals(
            trace=((0.0, "t"), (0.25, "t"), (0.25, "t")), templates=(t,)
        ).schedule()
        assert [a.time for a in arrivals] == [0.0, 0.25, 0.25]
        assert [a.job_name for a in arrivals] == ["t#0", "t#1", "t#2"]

    def test_rejects_unknown_template(self):
        with pytest.raises(ValueError, match="unknown template"):
            TraceArrivals(trace=((0.0, "ghost"),), templates=(template(),))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceArrivals(
                trace=((1.0, "t"), (0.5, "t")), templates=(template(),)
            )
