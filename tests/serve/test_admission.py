"""Admission policies: bounded queue, EDF expiry, watermark shedding."""

import pytest

from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.serve.admission import (
    ADMISSION_POLICIES,
    EdfAdmission,
    FifoAdmission,
    WatermarkShedding,
    make_admission,
)
from repro.serve.arrivals import Arrival, JobTemplate
from repro.serve.server import Job


def job(index=0, arrival=0.0, slo=1.0):
    t = JobTemplate(name="t", model="mobilenet", slo=slo)
    return Job(Arrival(time=arrival, template=t, index=index))


def machine():
    return Machine.for_platform(OPTANE_HM)


class TestFifo:
    def test_queue_full_sheds(self):
        policy = FifoAdmission(queue_limit=2)
        queue = [job(0), job(1)]
        ok, reason = policy.admit(job(2), queue, machine(), 0.0)
        assert not ok and reason == "queue-full"

    def test_admits_below_limit(self):
        policy = FifoAdmission(queue_limit=2)
        ok, reason = policy.admit(job(0), [], machine(), 0.0)
        assert ok and reason == "admitted"

    def test_select_is_fifo(self):
        policy = FifoAdmission(queue_limit=4)
        queue = [job(0), job(1), job(2)]
        picked, expired = policy.select(queue, 0.0)
        assert picked.arrival.index == 0
        assert expired == []
        assert [j.arrival.index for j in queue] == [1, 2]

    def test_empty_queue(self):
        picked, expired = FifoAdmission().select([], 0.0)
        assert picked is None and expired == []

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError, match="queue_limit"):
            FifoAdmission(queue_limit=0)


class TestEdf:
    def test_selects_earliest_deadline(self):
        policy = EdfAdmission(queue_limit=4)
        # Same arrival instant, different SLOs: tightest deadline first.
        loose, tight = job(0, arrival=0.0, slo=9.0), job(1, arrival=0.0, slo=1.0)
        queue = [loose, tight]
        picked, _ = policy.select(queue, 0.0)
        assert picked is tight
        assert queue == [loose]

    def test_arrival_order_breaks_deadline_ties(self):
        policy = EdfAdmission(queue_limit=4)
        first, second = job(0, arrival=0.0, slo=1.0), job(1, arrival=0.0, slo=1.0)
        picked, _ = policy.select([second, first], 0.0)
        assert picked is first

    def test_expires_dead_jobs_at_dispatch(self):
        policy = EdfAdmission(queue_limit=4)
        dead = job(0, arrival=0.0, slo=1.0)
        alive = job(1, arrival=0.0, slo=10.0)
        queue = [dead, alive]
        picked, expired = policy.select(queue, now=5.0)
        assert picked is alive
        assert expired == [dead]
        assert queue == []


class TestWatermark:
    def test_sheds_on_occupancy(self):
        policy = WatermarkShedding(queue_limit=4, occupancy_high=0.5)
        m = machine()
        m.fast.allocate(m.fast.capacity // 2 + m.page_size)
        ok, reason = policy.admit(job(0), [], m, 0.0)
        assert not ok and reason == "watermark-occupancy"

    def test_sheds_on_queue_depth(self):
        policy = WatermarkShedding(queue_limit=4, depth_fraction=0.5)
        ok, reason = policy.admit(job(9), [job(0), job(1)], machine(), 0.0)
        assert not ok and reason == "watermark-depth"

    def test_admits_when_healthy(self):
        policy = WatermarkShedding(queue_limit=4)
        ok, reason = policy.admit(job(0), [], machine(), 0.0)
        assert ok and reason == "admitted"

    def test_validation(self):
        with pytest.raises(ValueError, match="occupancy_high"):
            WatermarkShedding(occupancy_high=0.0)
        with pytest.raises(ValueError, match="depth_fraction"):
            WatermarkShedding(depth_fraction=1.5)


class TestRegistry:
    def test_all_registered_policies_build(self):
        for name in ADMISSION_POLICIES:
            policy = make_admission(name, queue_limit=3)
            assert policy.queue_limit == 3

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            make_admission("nope")
