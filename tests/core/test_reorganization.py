"""Data-reorganization invariants (§IV-B), verified on live page tables.

The four co-allocation rules, checked directly against the allocator's
run-occupancy during managed steps:

1. short-lived tensors of the same layer may share pages;
2. long-lived tensors share pages only with identical-lifetime tensors;
3. long-lived tensors with different lifetimes never share;
4. long- and short-lived tensors never share; preallocated tensors never
   share with anything.
"""

import pytest

from repro.core.runtime import MANAGED, SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor, StepObserver
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model
from repro.models.synthetic import random_graph


class SharingAuditor(StepObserver):
    """Records, at every layer boundary, which tensors co-reside per run."""

    def __init__(self, policy, graph):
        self.policy = policy
        self.graph = graph
        self.violations = []
        self._by_tid = {t.tid: t for t in graph.tensors}

    def on_layer_end(self, layer, now):
        if self.policy.mode != MANAGED:
            return
        allocator = self.policy.allocator
        seen = set()
        for mapping in list(allocator.live_mappings()):
            for share in mapping.shares:
                run = share.run
                if run.vpn in seen:
                    continue
                seen.add(run.vpn)
                users = [self._by_tid[tid] for tid in allocator.users_of(run)]
                if len(users) < 2:
                    continue
                self._audit(run, users, layer.index)

    def _audit(self, run, users, layer_index):
        if any(t.preallocated for t in users):
            self.violations.append(
                ("preallocated-shares", run.vpn, [t.name for t in users], layer_index)
            )
            return
        kinds = {t.short_lived for t in users}
        if len(kinds) > 1:
            self.violations.append(
                ("short-long-mix", run.vpn, [t.name for t in users], layer_index)
            )
            return
        if not users[0].short_lived:
            lifetimes = {(t.alloc_layer, t.free_layer) for t in users}
            if len(lifetimes) > 1:
                self.violations.append(
                    ("lifetime-mix", run.vpn, [t.name for t in users], layer_index)
                )
        else:
            layers = {t.alloc_layer for t in users}
            if len(layers) > 1:
                self.violations.append(
                    ("short-cross-layer", run.vpn, [t.name for t in users], layer_index)
                )


def audited_run(graph, fast_fraction=0.25, steps=4):
    machine = Machine.for_platform(
        OPTANE_HM,
        fast_capacity=max(
            OPTANE_HM.page_size * 256,
            int(graph.peak_memory_bytes() * fast_fraction),
        ),
    )
    policy = SentinelPolicy(SentinelConfig(warmup_steps=1))
    auditor = SharingAuditor(policy, graph)
    executor = Executor(graph, machine, policy, observers=[auditor])
    executor.run_steps(steps)
    return auditor


class TestCoAllocationInvariants:
    @pytest.mark.parametrize("model", ["resnet32", "lstm", "dcgan", "gpt-small"])
    def test_zoo_models_never_violate_sharing_rules(self, model):
        graph = build_model(model, scale="small")
        auditor = audited_run(graph)
        assert auditor.violations == []

    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_synthetic_graphs_never_violate_sharing_rules(self, seed):
        graph = random_graph(seed, max_layers=10, max_tensor_bytes=1 << 21)
        auditor = audited_run(graph)
        assert auditor.violations == []

    def test_packed_arena_would_violate(self):
        """Sanity: the audit actually detects mixing — the TF-default
        packing (co_allocate=False) shares across lifetimes."""
        graph = build_model("dcgan", batch_size=32)
        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=int(graph.peak_memory_bytes() * 0.25)
        )
        policy = SentinelPolicy(
            SentinelConfig(warmup_steps=1, co_allocate=False)
        )
        auditor = SharingAuditor(policy, graph)
        executor = Executor(graph, machine, policy, observers=[auditor])
        executor.run_steps(4)
        assert auditor.violations, "packing must mix lifetimes somewhere"
