"""Dynamic profiler: the measured profile must match graph ground truth.

This is the load-bearing property of the whole reproduction: Sentinel's
decisions are only as good as the OS/runtime-coordinated profile, and the
simulator knows the true access pattern, so we can check them against each
other exactly.
"""

import pytest

from repro.core.profiler import (
    DynamicProfiler,
    estimate_layer_fast_times,
    layer_short_lived_bytes,
    page_aligned_peak_bytes,
)
from repro.dnn.graph import GraphBuilder, Phase
from repro.dnn.tensor import TensorKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


def crafted_graph():
    """A graph with known per-layer access counts."""
    b = GraphBuilder("crafted", batch_size=2)
    w = b.weight("w", 8192)
    x = b.input("x", 4096)
    with b.layer("l0"):
        act = b.tensor("act", 4096 * 3)
        b.op("f0", flops=1e6, reads=[x, w], writes=[act])
        b.op("f0b", flops=1e6, reads=[act])
    with b.layer("l1"):
        mid = b.tensor("mid", 4096)
        b.op("f1", flops=1e6, reads=[act], writes=[mid])
    with b.layer("l2", Phase.BACKWARD):
        b.op("f2", flops=1e6, reads=[act, mid, w], writes=[w])
    return b.finish()


@pytest.fixture(scope="module")
def crafted_profile():
    return DynamicProfiler(OPTANE_HM).run(crafted_graph())


class TestProfileAccuracy:
    def test_every_tensor_profiled(self, crafted_profile):
        graph = crafted_graph()
        assert set(crafted_profile.profile.tensors) == {t.tid for t in graph.tensors}

    def test_lifetimes_match_ground_truth(self, crafted_profile):
        profile = crafted_profile.profile
        graph = crafted_graph()
        for tensor in graph.tensors:
            measured = profile.tensors[tensor.tid]
            assert measured.alloc_layer == tensor.alloc_layer
            assert measured.free_layer == tensor.free_layer
            assert measured.preallocated == tensor.preallocated

    def test_per_layer_touches_match_ground_truth(self, crafted_profile):
        """Fault-counter attribution equals the graph's declared accesses."""
        profile = crafted_profile.profile
        graph = crafted_graph()
        for tensor in graph.tensors:
            measured = profile.tensors[tensor.tid]
            assert measured.touches_by_layer == tensor.layer_touches, tensor.name

    def test_profiling_counts_cost_faults(self, crafted_profile):
        assert crafted_profile.profile.fault_count > 0
        assert crafted_profile.step_result.fault_time > 0

    @pytest.mark.parametrize("model", ["resnet32", "lstm", "dcgan"])
    def test_zoo_profiles_match_ground_truth(self, model):
        graph = build_model(model, batch_size=8)
        profile = DynamicProfiler(OPTANE_HM).run(graph).profile
        mismatches = [
            t.name
            for t in graph.tensors
            if profile.tensors[t.tid].touches_by_layer != t.layer_touches
        ]
        assert not mismatches


class TestOverheadAccounting:
    def test_profiling_step_slower_than_plain_step(self):
        """The poisoned step pays for every fault (paper: up to ~5x)."""
        graph = build_model("resnet32", batch_size=32)
        profiled = DynamicProfiler(OPTANE_HM).run(graph)
        from repro.dnn.executor import Executor
        from repro.dnn.policy import PlacementPolicy

        plain = Executor(
            build_model("resnet32", batch_size=32),
            Machine(OPTANE_HM),
            PlacementPolicy(),
        ).run_step()
        slowdown = profiled.step_result.duration / plain.duration
        assert 1.5 < slowdown < 10.0

    def test_memory_overhead_is_small(self):
        """Page-aligned profiling costs little because big tensors dominate
        (paper: at most ~2.4%)."""
        graph = build_model("resnet32", batch_size=256)
        profile = DynamicProfiler(OPTANE_HM).run(graph).profile
        assert 0.0 <= profile.memory_overhead < 0.05

    def test_profiling_never_touches_fast_memory(self):
        graph = build_model("dcgan", batch_size=8)
        machine_peak = []
        run = DynamicProfiler(OPTANE_HM).run(graph)
        assert run.step_result.peak_fast == 0

    def test_unpoisoned_after_profiling(self):
        graph = crafted_graph()
        profiler = DynamicProfiler(OPTANE_HM)
        run = profiler.run(graph)
        # All surviving (preallocated) runs are unpoisoned at step end.
        # (The machine is internal to the profiler; verify via a fresh run's
        # graph-level invariant instead: profile fault count is finite and
        # the step completed.)
        assert run.profile.fault_count == run.step_result.fault_time / OPTANE_HM.fault_cost


class TestHelpers:
    def test_estimate_layer_fast_times_positive(self):
        graph = crafted_graph()
        times = estimate_layer_fast_times(graph, Machine(OPTANE_HM))
        assert len(times) == graph.num_layers
        assert all(t > 0 for t in times)

    def test_layer_short_lived_bytes(self):
        b = GraphBuilder("s", batch_size=1)
        w = b.weight("w", 100)
        with b.layer("l0"):
            tmp = b.temp("tmp", 64)
            b.op("f", flops=1.0, reads=[w], writes=[tmp])
        with b.layer("l1"):
            tmp2 = b.temp("tmp2", 32)
            b.op("g", flops=1.0, reads=[w], writes=[tmp2])
        graph = b.finish()
        assert layer_short_lived_bytes(graph) == [64, 32]

    def test_page_aligned_peak_at_least_packed_peak(self):
        graph = build_model("mobilenet", batch_size=4)
        aligned = page_aligned_peak_bytes(graph, 4096)
        assert aligned >= graph.peak_memory_bytes()
