"""The §IV-E lower bound on fast memory size."""

import pytest

from repro.core import DynamicProfiler, SentinelConfig
from repro.harness.runner import run_policy
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


@pytest.fixture(scope="module")
def profile():
    return DynamicProfiler(OPTANE_HM).run(build_model("resnet32", batch_size=128)).profile


class TestLowerBound:
    def test_bound_components(self, profile):
        bound = profile.fast_memory_lower_bound()
        short_peak = max(profile.layer_short_lived_bytes)
        largest_long = max(
            t.nbytes for t in profile.tensors.values() if t.long_lived
        )
        assert bound == short_peak + largest_long

    def test_bound_well_below_peak(self, profile):
        """The bound is the *floor*, far under the 20% operating point."""
        assert profile.fast_memory_lower_bound() < 0.5 * profile.packed_peak_bytes

    def test_performance_degrades_sharply_below_bound(self, profile):
        """Paper: under the bound the runtime 'easily causes performance
        loss larger than 20%'."""
        graph = build_model("resnet32", batch_size=128)
        peak = graph.peak_memory_bytes()
        bound = profile.fast_memory_lower_bound()

        comfortable = run_policy(
            "sentinel",
            graph=build_model("resnet32", batch_size=128),
            fast_capacity=max(int(peak * 0.25), 2 * bound),
        )
        starved = run_policy(
            "sentinel",
            graph=build_model("resnet32", batch_size=128),
            fast_capacity=max(OPTANE_HM.page_size * 64, int(bound * 0.5)),
        )
        assert starved.step_time > comfortable.step_time * 1.2
