"""Dynamic graphs: bucketized profiling and control-flow re-profiling."""

import pytest

from repro.core.buckets import MAX_BUCKETS, BucketedSentinel, bucketize
from repro.core.runtime import SentinelConfig
from repro.mem.platforms import OPTANE_HM
from repro.models.lstm import build_lstm


def lstm_builder(seq_len: int):
    return build_lstm(batch_size=8, seq=max(2, seq_len))


def make_trainer(bounds=(8, 16, 32), **config):
    return BucketedSentinel(
        OPTANE_HM,
        lstm_builder,
        bucket_bounds=bounds,
        config=SentinelConfig(warmup_steps=0, **config),
    )


class TestBucketize:
    def test_few_distinct_sizes_get_exact_buckets(self):
        assert bucketize([5, 9, 5, 7]) == [5, 7, 9]

    def test_many_sizes_capped_at_max(self):
        bounds = bucketize(list(range(1, 200)))
        assert len(bounds) <= MAX_BUCKETS
        assert bounds[-1] == 199  # the largest size is always covered

    def test_validation(self):
        with pytest.raises(ValueError):
            bucketize([])
        with pytest.raises(ValueError):
            bucketize([1], max_buckets=0)

    def test_bounds_sorted_distinct(self):
        bounds = bucketize([3, 3, 100, 50, 50, 7] * 10)
        assert bounds == sorted(set(bounds))


class TestDispatch:
    def test_inputs_round_up_to_bucket(self):
        trainer = make_trainer()
        assert trainer.bucket_for(3) == 8
        assert trainer.bucket_for(8) == 8
        assert trainer.bucket_for(9) == 16
        assert trainer.bucket_for(32) == 32

    def test_oversized_input_rejected(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.bucket_for(33)

    def test_nonpositive_input_rejected(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.bucket_for(0)

    def test_too_many_buckets_rejected(self):
        with pytest.raises(ValueError):
            BucketedSentinel(
                OPTANE_HM, lstm_builder, bucket_bounds=list(range(1, 13))
            )


class TestProfilingAmortization:
    def test_each_bucket_profiles_exactly_once(self):
        trainer = make_trainer(bounds=(8, 16))
        for size in (4, 8, 12, 16, 5, 15):
            trainer.run_step(size)
        assert trainer.profiled_buckets == 2
        # one profiling step per bucket, regardless of how many steps ran
        assert trainer.overhead_steps() >= 2
        profiling_steps = sum(
            b.policy.profiling_steps_used for b in trainer._buckets.values()
        )
        assert profiling_steps == 2

    def test_repeat_sizes_reuse_managed_runtime(self):
        trainer = make_trainer(bounds=(8,))
        first = trainer.run_step(8)   # profiling step (warmup=0)
        second = trainer.run_step(8)  # first managed step
        third = trainer.run_step(8)
        assert third.duration <= first.duration  # managed faster than profiled
        # Managed steps settle around a steady state (the first managed step
        # may still be warming the placement).
        assert 0.5 * second.duration <= third.duration <= 1.5 * second.duration

    def test_unseen_control_flow_triggers_reprofile(self):
        trainer = make_trainer(bounds=(8,))
        trainer.run_step(8)
        assert trainer.reprofiles == 1
        variant = build_lstm(batch_size=8, seq=6, layers=1)  # new dataflow
        trainer.run_graph(variant)
        assert trainer.reprofiles == 2
        # Same variant again: no further profiling.
        trainer.run_graph(build_lstm(batch_size=8, seq=6, layers=1))
        assert trainer.reprofiles == 2
