"""Profiler edge cases: re-profiling, counter hygiene, weird graphs."""

import pytest

from repro.core.profiler import DynamicProfiler, ProfileCollector
from repro.dnn.graph import GraphBuilder, Phase
from repro.dnn.ops import TensorAccess
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


class TestReProfiling:
    def test_profiling_twice_gives_identical_profiles(self):
        """Counters are per-run and runs are fresh per profiler instance:
        repeated profiling must agree exactly (step-to-step stability is
        the paper's premise)."""
        graph = build_model("dcgan", batch_size=8)
        first = DynamicProfiler(OPTANE_HM).run(build_model("dcgan", batch_size=8))
        second = DynamicProfiler(OPTANE_HM).run(build_model("dcgan", batch_size=8))
        for tid, record in first.profile.tensors.items():
            assert record.touches_by_layer == second.profile.tensors[tid].touches_by_layer

    def test_profile_signature_matches_graph(self):
        graph = build_model("lstm", batch_size=8)
        profile = DynamicProfiler(OPTANE_HM).run(graph).profile
        assert profile.signature == graph.signature()


class TestCollectorEdgeCases:
    def test_tensor_never_settled_is_absent_from_touches(self):
        collector = ProfileCollector()
        # finalize with nothing registered: empty profile is valid.
        from repro.dnn.graph import GraphBuilder
        from repro.mem.machine import Machine

        b = GraphBuilder("tiny", batch_size=1)
        w = b.weight("w", 4096)
        with b.layer("l"):
            b.op("f", flops=1.0, reads=[w])
        graph = b.finish()
        profile = collector.finalize(graph, Machine(OPTANE_HM))
        assert profile.tensors == {}

    def test_multi_pass_accesses_counted_as_passes(self):
        """A k-pass access registers k touches, not k*pages."""
        b = GraphBuilder("passes", batch_size=1)
        w = b.weight("w", 4096 * 8)  # 8 pages
        with b.layer("l"):
            out = b.tensor("out", 4096)
            b.op(
                "f",
                flops=1.0,
                reads=[TensorAccess(w, w.nbytes, is_write=False, passes=7)],
                writes=[out],
            )
        graph = b.finish()
        profile = DynamicProfiler(OPTANE_HM).run(graph).profile
        w_record = profile.tensors[graph.tensor("w").tid]
        assert w_record.touches_by_layer == {0: 7}

    def test_partial_access_of_large_tensor(self):
        """Touching a slice of a big tensor counts fractionally per pass
        (rounded to at least one)."""
        b = GraphBuilder("partial", batch_size=1)
        w = b.weight("w", 4096 * 100)
        with b.layer("l"):
            out = b.tensor("out", 64)
            b.op(
                "f",
                flops=1.0,
                reads=[TensorAccess(w, 4096, is_write=False)],  # 1 page of 100
                writes=[out],
            )
        graph = b.finish()
        profile = DynamicProfiler(OPTANE_HM).run(graph).profile
        w_record = profile.tensors[graph.tensor("w").tid]
        # One page of a hundred: rounds to one pass, never zero.
        assert w_record.touches_by_layer == {0: 1}


class TestProfileFastTimes:
    def test_layer_fast_times_sum_below_slow_step(self):
        graph = build_model("dcgan", batch_size=16)
        run = DynamicProfiler(OPTANE_HM).run(graph)
        fast_estimate = sum(run.profile.layer_fast_times)
        # The profiling step ran on slow memory with faults: far slower
        # than the fast-memory estimate.
        assert fast_estimate < run.step_result.duration
