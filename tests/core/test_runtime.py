"""SentinelPolicy: lifecycle phases, reorganization, reservation, migration."""

import pytest

from repro.core.runtime import MANAGED, PROFILING, WARMUP, SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor
from repro.dnn.tensor import TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


def managed_executor(model="resnet32", batch=64, fast_fraction=0.25, **config):
    graph = build_model(model, batch_size=batch)
    peak = graph.peak_memory_bytes()
    machine = Machine.for_platform(OPTANE_HM, fast_capacity=int(peak * fast_fraction))
    policy = SentinelPolicy(SentinelConfig(warmup_steps=1, **config))
    executor = Executor(graph, machine, policy)
    return graph, machine, policy, executor


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SentinelConfig(warmup_steps=-1)
        with pytest.raises(ValueError):
            SentinelConfig(fixed_interval_length=0)


class TestLifecycle:
    def test_phase_progression(self):
        graph, machine, policy, executor = managed_executor()
        assert policy.mode == WARMUP
        executor.run_step()
        assert policy.mode == WARMUP  # step 0 is warm-up
        executor.run_step()
        assert policy.mode == PROFILING
        assert policy.profile is None
        executor.run_step()
        assert policy.mode == MANAGED
        assert policy.profile is not None
        assert policy.plan is not None

    def test_profiling_step_is_slow_but_one_off(self):
        graph, machine, policy, executor = managed_executor()
        warmup = executor.run_step()
        profiling = executor.run_step()
        managed = executor.run_step()
        assert profiling.duration > warmup.duration  # faults cost time
        assert managed.duration < profiling.duration
        assert policy.profiling_steps_used == 1

    def test_profile_matches_ground_truth(self):
        graph, machine, policy, executor = managed_executor()
        executor.run_steps(3)
        for tensor in graph.tensors:
            record = policy.profile.tensors[tensor.tid]
            assert record.touches_by_layer == tensor.layer_touches

    def test_poison_cleared_after_profiling(self):
        graph, machine, policy, executor = managed_executor()
        executor.run_steps(3)
        assert not any(e.poisoned for e in machine.page_table.entries())


class TestReorganization:
    def test_warmup_packs_into_shared_arena(self):
        graph, machine, policy, executor = managed_executor()
        assert policy._group_of(graph.step_tensors()[0]) == "arena"

    def test_profiling_mode_is_page_aligned(self):
        graph, machine, policy, executor = managed_executor()
        policy.mode = PROFILING
        assert policy._group_of(graph.step_tensors()[0]) is None

    def test_managed_groups_by_lifetime(self):
        graph, machine, policy, executor = managed_executor()
        executor.run_steps(3)
        short = next(t for t in graph.step_tensors() if t.short_lived)
        long = next(t for t in graph.step_tensors() if not t.short_lived)
        assert policy._group_of(short) == ("short", short.alloc_layer)
        assert policy._group_of(long) == ("long", long.alloc_layer, long.free_layer)
        assert policy._group_of(short) != policy._group_of(long)

    def test_preallocated_never_share(self):
        graph, machine, policy, executor = managed_executor()
        weight = graph.preallocated()[0]
        for mode in (WARMUP, PROFILING, MANAGED):
            policy.mode = mode
            assert policy._group_of(weight) is None

    def test_co_allocation_ablation_reverts_to_arena(self):
        graph, machine, policy, executor = managed_executor(co_allocate=False)
        executor.run_steps(3)
        assert policy._group_of(graph.step_tensors()[0]) == "arena"


class TestPlacement:
    def test_everything_slow_before_managed(self):
        graph, machine, policy, executor = managed_executor()
        tensor = graph.step_tensors()[0]
        assert policy.place(tensor, 0.0) is DeviceKind.SLOW

    def test_short_lived_placed_fast_when_managed(self):
        graph, machine, policy, executor = managed_executor()
        executor.run_steps(3)
        short = next(t for t in graph.step_tensors() if t.short_lived)
        assert policy.place(short, executor.clock.now) is DeviceKind.FAST

    def test_reservation_headroom_shrinks_with_pool_usage(self):
        graph, machine, policy, executor = managed_executor()
        executor.run_steps(3)
        headroom = policy._reservation_headroom()
        assert headroom == policy.plan.reserved_short_bytes
        policy._short_fast_bytes = policy.plan.reserved_short_bytes // 2
        assert policy._reservation_headroom() == pytest.approx(
            policy.plan.reserved_short_bytes - policy._short_fast_bytes
        )

    def test_no_reservation_without_flag(self):
        graph, machine, policy, executor = managed_executor(reserve_short=False)
        executor.run_steps(3)
        assert policy._reservation_headroom() == 0


class TestMigration:
    def test_managed_steps_migrate(self):
        graph, machine, policy, executor = managed_executor(fast_fraction=0.2)
        executor.run_steps(3)
        managed = executor.run_step()
        assert managed.promoted_bytes > 0
        assert managed.demoted_bytes > 0

    def test_short_lived_never_migrates(self):
        """§IV-C: the reserved pool is pinned in effect — short-lived pages
        are placed fast and freed there, never demoted."""
        graph, machine, policy, executor = managed_executor(fast_fraction=0.2)
        executor.run_steps(3)
        demoted_tags = [
            record.transfer.tag
            for record in machine.migration._pending
        ]
        # run one more step while watching demote tags
        demote = machine.migration.demote
        demoted_runs = []

        def spy(runs, now, tag=None):
            demoted_runs.extend(runs)
            return demote(runs, now, tag=tag)

        machine.migration.demote = spy
        executor.run_step()
        assert demoted_runs, "long-lived tensors should still be demoted"
        short_tids = {t.tid for t in graph.step_tensors() if t.short_lived}
        for run in demoted_runs:
            users = policy.allocator.users_of(run)
            assert not (users & short_tids)

    def test_fixed_interval_length_respected(self):
        graph, machine, policy, executor = managed_executor(fixed_interval_length=3)
        executor.run_steps(3)
        assert policy.plan.interval_length == 3

    def test_direct_migration_ablation_uses_mil_one(self):
        graph, machine, policy, executor = managed_executor(interval_opt=False)
        executor.run_steps(3)
        assert policy.plan.interval_length == 1

    def test_steady_state_is_deterministic(self):
        def run():
            _, _, _, executor = managed_executor(fast_fraction=0.2)
            return [r.duration for r in executor.run_steps(6)]

        assert run() == run()

    def test_sentinel_beats_unmanaged_slow(self):
        graph, machine, policy, executor = managed_executor(fast_fraction=0.2)
        results = executor.run_steps(5)
        warmup, managed = results[0], results[-1]
        assert managed.duration < warmup.duration


class TestOverheadCounters:
    def test_overhead_steps_accounting(self):
        graph, machine, policy, executor = managed_executor()
        executor.run_steps(4)
        assert policy.overhead_steps >= 1  # at least the profiling step
        assert policy.profiling_steps_used == 1
