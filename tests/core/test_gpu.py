"""Sentinel-GPU: pinned-memory profiling, residency, eviction."""

import pytest

from repro.core.gpu import SentinelGPUPolicy, evict_coldest
from repro.core.runtime import MANAGED, PROFILING, SentinelConfig
from repro.dnn.executor import Executor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM
from repro.models import build_model


def gpu_executor(model="dcgan", batch=256, fast_capacity=None, **config):
    graph = build_model(model, batch_size=batch)
    machine = Machine.for_platform(GPU_HM, fast_capacity=fast_capacity)
    policy = SentinelGPUPolicy(SentinelConfig(warmup_steps=1, **config))
    executor = Executor(graph, machine, policy)
    return graph, machine, policy, executor


class TestGPUPolicy:
    def test_residency_inherited_from_platform(self):
        graph, machine, policy, executor = gpu_executor()
        assert policy.residency

    def test_case3_never_trials(self):
        """§V: GPU cannot leave tensors in host memory; no test-and-trial."""
        policy = SentinelGPUPolicy()
        assert not policy.config.test_and_trial

    def test_profiling_runs_over_interconnect(self):
        """Pinned-memory profiling prices accesses at link bandwidth and
        never stalls for residency."""
        graph, machine, policy, executor = gpu_executor()
        executor.run_step()  # warm-up
        profiling = executor.run_step()
        assert policy.profile is not None or policy.mode == PROFILING
        # the profiling step moved nothing to the device
        assert profiling.promoted_bytes == 0

    def test_two_copy_sync_charged_once(self):
        graph, machine, policy, executor = gpu_executor()
        executor.run_steps(3)
        assert policy._synced_after_profiling
        sync_bytes = sum(t.nbytes for t in graph.preallocated())
        expected = sync_bytes / GPU_HM.promote_bandwidth
        # The first managed step carried the sync stall.
        # (It appears in that step's stall_time; the policy flag proves the
        # path was taken exactly once.)
        before = policy._synced_after_profiling
        executor.run_step()
        assert policy._synced_after_profiling == before

    def test_managed_phase_reached_and_faster_than_profiling(self):
        graph, machine, policy, executor = gpu_executor()
        results = executor.run_steps(4)
        assert policy.mode == MANAGED
        assert results[-1].duration < results[1].duration

    def test_oversubscribed_model_still_trains(self):
        """Peak beyond device memory must run (that is the whole point)."""
        graph, machine, policy, executor = gpu_executor(
            model="dcgan", batch=2048, fast_capacity=4 * 1024**3
        )
        peak = graph.peak_memory_bytes()
        assert peak > machine.fast.capacity
        result = executor.run_steps(4)[-1]
        assert result.migrated_bytes > 0
        assert machine.fast.used <= machine.fast.capacity


class TestEvictColdest:
    def test_waits_for_inflight_demotions_first(self):
        graph, machine, policy, executor = gpu_executor()
        executor.run_steps(3)
        # Fill fast and start a demotion; evict_for should wait rather than
        # queue more victims.
        run = machine.page_table.map_run(1024, DeviceKind.FAST)
        machine.fast.allocate(1024 * machine.page_size)
        transfer, _ = machine.migration.demote([run], executor.clock.now)
        before = machine.demote_channel.bytes_moved
        stall = policy.evict_for(512 * machine.page_size, executor.clock.now)
        assert stall >= 0.0
        # No new demotion was needed beyond what was in flight if the
        # in-flight bytes suffice.
        assert machine.demote_channel.bytes_moved >= before

    def test_profile_ranked_eviction_prefers_farthest_use(self):
        graph, machine, policy, executor = gpu_executor()
        executor.run_steps(4)
        ranked = policy._runs_coldest_first(executor.clock.now)
        assert isinstance(ranked, list)
