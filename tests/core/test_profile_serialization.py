"""Profile persistence: to_json/from_json round-trips exactly."""

import pytest

from repro.core import DynamicProfiler
from repro.core.profile import Profile
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model


@pytest.fixture(scope="module")
def profile():
    return DynamicProfiler(OPTANE_HM).run(build_model("dcgan", batch_size=16)).profile


class TestRoundTrip:
    def test_tensors_identical(self, profile):
        restored = Profile.from_json(profile.to_json())
        assert set(restored.tensors) == set(profile.tensors)
        for tid, original in profile.tensors.items():
            copy = restored.tensors[tid]
            assert copy.touches_by_layer == original.touches_by_layer
            assert copy.nbytes == original.nbytes
            assert copy.alloc_layer == original.alloc_layer
            assert copy.free_layer == original.free_layer
            assert copy.preallocated == original.preallocated

    def test_signature_round_trips_as_tuples(self, profile):
        restored = Profile.from_json(profile.to_json())
        assert restored.signature == profile.signature
        assert isinstance(restored.signature, tuple)

    def test_derived_queries_agree(self, profile):
        restored = Profile.from_json(profile.to_json())
        assert restored.rs(2) == profile.rs(2)
        assert restored.fast_memory_lower_bound() == profile.fast_memory_lower_bound()
        assert restored.long_lived_bytes_touched_in(0, 5) == (
            profile.long_lived_bytes_touched_in(0, 5)
        )
        assert restored.hotness_rank() == profile.hotness_rank()

    def test_interval_plans_agree(self, profile):
        from repro.core.interval import choose_interval_length

        restored = Profile.from_json(profile.to_json())
        capacity = profile.packed_peak_bytes // 5
        original_plan = choose_interval_length(profile, capacity, 8e9)
        restored_plan = choose_interval_length(restored, capacity, 8e9)
        assert restored_plan.interval_length == original_plan.interval_length
        assert restored_plan.estimated_exposure == pytest.approx(
            original_plan.estimated_exposure
        )

    def test_signature_match_detects_different_graphs(self, profile):
        other = build_model("lstm", batch_size=8)
        assert profile.signature != other.signature()
