"""Migration-interval performance model (Eq. 1 and Eq. 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interval import (
    choose_interval_length,
    evaluate_interval_length,
    partition_layers,
)
from repro.core.profile import Profile, TensorProfile


def profile_with(
    num_layers=8,
    long_tensors=(),
    short_bytes=None,
    fast_times=None,
):
    tensors = {}
    for tid, (nbytes, touches) in enumerate(long_tensors):
        tensors[tid] = TensorProfile(
            tid=tid,
            name=f"t{tid}",
            nbytes=nbytes,
            alloc_layer=0,
            free_layer=num_layers - 1,
            preallocated=False,
            touches_by_layer=dict(touches),
        )
    return Profile(
        graph_name="g",
        signature=(),
        num_layers=num_layers,
        page_size=4096,
        tensors=tensors,
        layer_fast_times=fast_times or [0.1] * num_layers,
        layer_short_lived_bytes=short_bytes or [0] * num_layers,
    )


class TestPartition:
    def test_exact_division(self):
        assert partition_layers(6, 2) == [[0, 1], [2, 3], [4, 5]]

    def test_remainder_goes_to_last_interval(self):
        assert partition_layers(7, 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_single_interval(self):
        assert partition_layers(4, 10) == [[0, 1, 2, 3]]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_layers(0, 1)
        with pytest.raises(ValueError):
            partition_layers(4, 0)

    @given(
        num_layers=st.integers(min_value=1, max_value=500),
        interval=st.integers(min_value=1, max_value=64),
    )
    def test_partition_covers_all_layers_once(self, num_layers, interval):
        intervals = partition_layers(num_layers, interval)
        flattened = [l for chunk in intervals for l in chunk]
        assert flattened == list(range(num_layers))
        assert all(len(chunk) <= interval for chunk in intervals)


class TestSpaceConstraint:
    def test_infeasible_when_demand_exceeds_capacity(self):
        """Eq. 1: Tensor(MIL) must be under S - RS."""
        profile = profile_with(
            num_layers=4,
            long_tensors=[(1000, {0: 1, 1: 1, 2: 1, 3: 1})],
            short_bytes=[200] * 4,
        )
        plan = evaluate_interval_length(profile, 2, fast_capacity=1100, promote_bandwidth=1e9)
        assert not plan.feasible  # 1000 >= 1100 - 200
        plan = evaluate_interval_length(profile, 2, fast_capacity=1300, promote_bandwidth=1e9)
        assert plan.feasible

    def test_rs_subtracted_from_capacity(self):
        profile = profile_with(
            num_layers=4,
            long_tensors=[(500, {0: 1, 3: 1})],
            short_bytes=[0, 600, 0, 0],
        )
        # Without RS 500 < 1000 would be feasible; RS=600 makes it not.
        plan = evaluate_interval_length(profile, 4, fast_capacity=1000, promote_bandwidth=1e9)
        assert not plan.feasible


class TestGoal:
    def test_exposure_zero_when_compute_hides_migration(self):
        profile = profile_with(
            num_layers=4,
            long_tensors=[(100, {2: 1})],
            fast_times=[10.0] * 4,
        )
        plan = evaluate_interval_length(profile, 2, fast_capacity=10**6, promote_bandwidth=1e3)
        # Interval 1 needs 100B -> 0.1s, hidden behind interval 0's 20s.
        assert plan.estimated_exposure == pytest.approx(0.0)

    def test_exposure_positive_when_compute_too_short(self):
        profile = profile_with(
            num_layers=4,
            long_tensors=[(10000, {2: 1, 3: 1})],
            fast_times=[0.001] * 4,
        )
        plan = evaluate_interval_length(profile, 2, fast_capacity=10**6, promote_bandwidth=1e3)
        assert plan.estimated_exposure > 0

    def test_first_interval_demand_fully_exposed(self):
        profile = profile_with(
            num_layers=2,
            long_tensors=[(1000, {0: 1})],
            fast_times=[5.0, 5.0],
        )
        plan = evaluate_interval_length(profile, 1, fast_capacity=10**6, promote_bandwidth=1e3)
        assert plan.estimated_exposure == pytest.approx(1.0)


class TestChooser:
    def test_picks_feasible_minimum_exposure(self):
        profile = profile_with(
            num_layers=8,
            long_tensors=[
                (1000, {i: 1 for i in range(8)}),
            ],
            fast_times=[0.5] * 8,
        )
        plan = choose_interval_length(profile, fast_capacity=10**6, promote_bandwidth=1e6)
        assert plan.feasible
        # Everything hides easily; the tie-break prefers the longest MIL.
        assert plan.interval_length == 8

    def test_space_constraint_caps_interval_length(self):
        # Each layer touches a distinct 1000-byte tensor; capacity 2500
        # fits at most two per interval.
        tensors = [(1000, {i: 1}) for i in range(8)]
        profile = profile_with(num_layers=8, long_tensors=tensors)
        plan = choose_interval_length(profile, fast_capacity=2500, promote_bandwidth=1e9)
        assert plan.feasible
        assert plan.interval_length <= 2

    def test_falls_back_when_nothing_feasible(self):
        profile = profile_with(
            num_layers=4,
            long_tensors=[(10**9, {i: 1 for i in range(4)})],
        )
        plan = choose_interval_length(profile, fast_capacity=1000, promote_bandwidth=1e9)
        assert not plan.feasible
        assert plan.interval_length == 1

    def test_validation(self):
        profile = profile_with()
        with pytest.raises(ValueError):
            choose_interval_length(profile, fast_capacity=0, promote_bandwidth=1.0)
        with pytest.raises(ValueError):
            choose_interval_length(profile, fast_capacity=1, promote_bandwidth=0.0)

    def test_max_interval_length_respected(self):
        profile = profile_with(num_layers=8, fast_times=[0.5] * 8)
        plan = choose_interval_length(
            profile, fast_capacity=10**6, promote_bandwidth=1e6, max_interval_length=3
        )
        assert plan.interval_length <= 3


class TestModelProperties:
    @given(
        capacity=st.integers(min_value=10**3, max_value=10**7),
        bandwidth=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_more_capacity_never_breaks_feasibility(self, capacity, bandwidth):
        profile = profile_with(
            num_layers=6,
            long_tensors=[(500, {i: 1}) for i in range(6)],
            short_bytes=[100] * 6,
        )
        plan = evaluate_interval_length(profile, 2, capacity, bandwidth)
        bigger = evaluate_interval_length(profile, 2, capacity * 2, bandwidth)
        if plan.feasible:
            assert bigger.feasible

    @given(bandwidth=st.floats(min_value=1e3, max_value=1e9))
    def test_more_bandwidth_never_increases_exposure(self, bandwidth):
        profile = profile_with(
            num_layers=6,
            long_tensors=[(10**6, {i: 1}) for i in range(6)],
            fast_times=[0.01] * 6,
        )
        base = evaluate_interval_length(profile, 2, 10**9, bandwidth)
        faster = evaluate_interval_length(profile, 2, 10**9, bandwidth * 2)
        assert faster.estimated_exposure <= base.estimated_exposure + 1e-12

    @given(
        mil=st.integers(min_value=1, max_value=12),
        num_layers=st.integers(min_value=1, max_value=40),
    )
    def test_plan_partitions_are_consistent(self, mil, num_layers):
        profile = profile_with(num_layers=num_layers)
        plan = evaluate_interval_length(profile, mil, 10**9, 1e9)
        assert len(plan.tensor_bytes) == plan.num_intervals
        assert len(plan.fast_times) == plan.num_intervals
        for layer in range(num_layers):
            interval = plan.interval_of_layer(layer)
            assert layer in plan.layers_of(interval)


class TestPlanQueries:
    def test_interval_of_layer(self):
        profile = profile_with(num_layers=7)
        plan = evaluate_interval_length(profile, 3, fast_capacity=10**6, promote_bandwidth=1e6)
        assert plan.interval_of_layer(0) == 0
        assert plan.interval_of_layer(2) == 0
        assert plan.interval_of_layer(3) == 1
        assert plan.interval_of_layer(6) == 2
        assert plan.layers_of(2) == [6]
