"""White-box tests of SentinelPolicy's planning internals.

These pin the arithmetic of the deficit/prefetch machinery on a small
crafted workload so behavioural regressions show as unit failures rather
than end-to-end slowdowns.
"""

import pytest

from repro.core.runtime import MANAGED, SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor
from repro.dnn.graph import GraphBuilder, Phase
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM

PAGE = OPTANE_HM.page_size


def crafted_graph(layers=6, act_bytes=PAGE * 8):
    """A chain whose every forward activation is consumed by its mirrored
    backward layer — maximally regular, so planning quantities are exact."""
    b = GraphBuilder("crafted", batch_size=1)
    w = b.weight("w", PAGE * 2)
    x = b.input("x", act_bytes)
    acts = []
    current = x
    for index in range(layers):
        with b.layer(f"fwd{index}"):
            out = b.tensor(f"act{index}", act_bytes)
            b.op(f"f{index}", flops=1e7, reads=[current, w], writes=[out])
        acts.append(out)
        current = out
    grad = None
    for index in reversed(range(layers)):
        with b.layer(f"bwd{index}", Phase.BACKWARD):
            new_grad = b.tensor(f"grad{index}", act_bytes)
            reads = [acts[index]]
            if grad is not None:
                reads.append(grad)
            b.op(f"b{index}", flops=1e7, reads=reads, writes=[new_grad])
            # Weight update: makes the weight an initialized (written) run.
            b.op(f"apply{index}", flops=1e5, reads=[new_grad], writes=[w])
        grad = new_grad
    return b.finish()


def managed_policy(fast_pages=64, **config):
    graph = crafted_graph()
    machine = Machine.for_platform(OPTANE_HM, fast_capacity=fast_pages * PAGE)
    policy = SentinelPolicy(SentinelConfig(warmup_steps=0, **config))
    executor = Executor(graph, machine, policy)
    executor.run_step()  # profiling step (warmup=0)
    executor.run_step()  # first managed step finalizes the profile
    assert policy.mode == MANAGED
    return graph, machine, policy, executor


class TestAllocDemand:
    def test_per_layer_demand_matches_graph(self):
        graph, machine, policy, _ = managed_policy()
        act_bytes = PAGE * 8
        demand = policy._alloc_demand_by_layer
        # Every layer allocates exactly one long-lived tensor of act_bytes,
        # except the last backward layer: its gradient is written and never
        # read again, making it short-lived (excluded from the demand).
        assert demand[:-1] == [act_bytes] * (graph.num_layers - 1)
        assert demand[-1] == 0
        assert policy._alloc_demand == act_bytes

    def test_lookahead_windows(self):
        graph, machine, policy, _ = managed_policy()
        act_bytes = PAGE * 8
        policy._current_layer = 0
        assert policy._upcoming_alloc_demand(1) == act_bytes
        assert policy._upcoming_alloc_demand(2) == 2 * act_bytes
        # The final layer's gradient is short-lived: zero long-lived demand.
        policy._current_layer = graph.num_layers - 1
        assert policy._upcoming_alloc_demand(4) == 0
        # Just before it, exactly one long-lived allocation remains.
        policy._current_layer = graph.num_layers - 2
        assert policy._upcoming_alloc_demand(4) == act_bytes


class TestReservation:
    def test_reservation_equals_short_lived_peak(self):
        # The only short-lived tensor is the final backward gradient.
        graph, machine, policy, _ = managed_policy()
        act_bytes = PAGE * 8
        assert policy.plan.reserved_short_bytes == act_bytes
        assert policy._reservation_headroom() == act_bytes

    def test_reservation_disabled_by_config(self):
        graph, machine, policy, _ = managed_policy(reserve_short=False)
        assert policy._reservation_headroom() == 0


class TestSpaceDeficit:
    def test_deficit_negative_when_fast_is_empty_and_nothing_pending(self):
        graph, machine, policy, executor = managed_policy(fast_pages=4096)
        policy._current_layer = 0
        assert policy._space_deficit(executor.clock.now) <= 0

    def test_deficit_counts_next_interval_slow_bytes(self):
        graph, machine, policy, executor = managed_policy(fast_pages=64)
        now = executor.clock.now
        # Stand at the start of the backward half: the next interval's
        # saved activations are on slow and must be counted.
        mil = policy.plan.interval_length
        boundary = (graph.num_layers // (2 * mil)) * mil
        policy._current_layer = boundary
        deficit = policy._space_deficit(now)
        slack = max(machine.fast.capacity // 20, policy._upcoming_alloc_demand())
        if not policy.residency:
            slack += policy._upcoming_alloc_demand(4)
        # Deficit is bounded by demand minus free (no pending, no inflight).
        assert deficit <= slack + policy.plan.reserved_short_bytes + sum(
            t.nbytes for t in graph.tensors
        )


class TestPrefetchBudget:
    def test_prefetch_respects_headroom_budget(self):
        graph, machine, policy, executor = managed_policy(fast_pages=64)
        now = executor.clock.now
        runs = [machine.page_table.map_run(16, DeviceKind.SLOW) for _ in range(8)]
        machine.slow.allocate(8 * 16 * PAGE)
        for run in runs:
            run.initialized = True
        headroom = machine.fast.free - 16 * PAGE  # room for exactly one run
        transfers, skipped = policy._promote_with_headroom(runs, now, headroom)
        promoted_pages = sum(
            r.npages for t in transfers for r in [None] if False
        )
        # One run fits the budget (minus the allocation window), the rest
        # are returned for retry.
        assert len(transfers) <= 2
        assert len(skipped) >= len(runs) - 2

    def test_fast_resident_runs_are_dropped_not_skipped(self):
        graph, machine, policy, executor = managed_policy(fast_pages=256)
        now = executor.clock.now
        machine.fast.allocate(4 * PAGE)
        resident = machine.page_table.map_run(4, DeviceKind.FAST)
        transfers, skipped = policy._promote_with_headroom([resident], now, 0)
        assert transfers == []
        assert skipped == []


class TestOnAccessPromotion:
    def test_slow_access_triggers_async_promotion(self):
        graph, machine, policy, executor = managed_policy(fast_pages=4096)
        executor.run_step()
        # Find a long-lived tensor mapping and force it to slow.
        tid, mapping = next(
            (tid, m)
            for tid, m in policy._mappings.items()
            if not policy.profile.tensors[tid].short_lived
            and policy.profile.tensors[tid].next_touch_after(0) is not None
        )
        machine.migration.demote(mapping.runs(), executor.clock.now)
        machine.migration.sync(float("inf"))
        before = machine.stats.counter("migration.promoted_bytes").value
        policy._current_layer = 1
        policy._promote_on_access(
            graph.tensors[tid], mapping, executor.clock.now
        )
        after = machine.stats.counter("migration.promoted_bytes").value
        assert after > before

    def test_never_used_again_is_left_alone(self):
        graph, machine, policy, executor = managed_policy(fast_pages=4096)
        executor.run_step()
        # A tensor with no future touches must not be promoted.
        record = next(iter(policy.profile.tensors.values()))
        policy._current_layer = graph.num_layers  # past every touch
        tid = record.tid
        mapping = policy._mappings.get(tid)
        if mapping is None:
            pytest.skip("tensor not live at this point")
        before = machine.stats.counter("migration.promoted_bytes").value
        policy._promote_on_access(graph.tensors[tid], mapping, executor.clock.now)
        assert machine.stats.counter("migration.promoted_bytes").value == before


class TestShortLivedPinning:
    def test_pool_runs_are_pinned(self):
        """§IV-C: short-lived tensors' fast-memory pages are pinned — the
        migration engine structurally refuses to move them."""
        from repro.models import build_model

        graph = build_model("dcgan", batch_size=32)
        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=int(graph.peak_memory_bytes() * 0.3)
        )
        policy = SentinelPolicy(SentinelConfig(warmup_steps=1))
        pinned_seen = []
        original = SentinelPolicy.on_alloc

        def spy(self, tensor, mapping, now):
            original(self, tensor, mapping, now)
            if self.mode == MANAGED and tensor.short_lived:
                pinned_seen.extend(
                    share.run.pinned
                    for share in mapping.shares
                    if share.run.device is DeviceKind.FAST
                )

        SentinelPolicy.on_alloc = spy
        try:
            Executor(graph, machine, policy).run_steps(4)
        finally:
            SentinelPolicy.on_alloc = original
        assert pinned_seen and all(pinned_seen)

    def test_no_pinning_without_reservation(self):
        from repro.models import build_model

        graph = build_model("dcgan", batch_size=32)
        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=int(graph.peak_memory_bytes() * 0.3)
        )
        policy = SentinelPolicy(
            SentinelConfig(warmup_steps=1, reserve_short=False)
        )
        Executor(graph, machine, policy).run_steps(4)
        machine.migration.sync(float("inf"))
        assert not any(e.pinned for e in machine.page_table.entries())
