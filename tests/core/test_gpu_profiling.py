"""Sentinel-GPU's profiling mechanics, quantitatively (§V)."""

import pytest

from repro.core.gpu import SentinelGPUPolicy
from repro.core.runtime import PROFILING, SentinelConfig
from repro.dnn.executor import Executor
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM
from repro.models import build_model


def gpu_run(steps, **config):
    graph = build_model("dcgan", batch_size=128)
    machine = Machine.for_platform(GPU_HM)
    policy = SentinelGPUPolicy(SentinelConfig(warmup_steps=1, **config))
    executor = Executor(graph, machine, policy)
    results = executor.run_steps(steps)
    return graph, machine, policy, executor, results


class TestPinnedMemoryProfiling:
    def test_profiling_step_priced_at_link_bandwidth(self):
        """During profiling the GPU reads host-pinned pages over PCIe: the
        step's memory time reflects the interconnect, not HBM."""
        graph, machine, policy, executor, results = gpu_run(steps=2)
        warmup, profiling = results
        # Rough bound: the traffic at link bandwidth is a floor for the
        # profiling step's memory time.
        traffic = profiling.bytes_slow
        floor = traffic / GPU_HM.promote_bandwidth
        assert profiling.mem_time >= floor * 0.9

    def test_no_device_transfers_during_profiling(self):
        graph, machine, policy, executor, results = gpu_run(steps=2)
        assert results[1].promoted_bytes == 0

    def test_faults_counted_host_side(self):
        """Access counting loses nothing: the profile matches ground truth
        even though the accesses came 'from the GPU'."""
        graph, machine, policy, executor, results = gpu_run(steps=3)
        assert policy.profile is not None
        mismatch = [
            t.name
            for t in graph.tensors
            if policy.profile.tensors[t.tid].touches_by_layer != t.layer_touches
        ]
        assert mismatch == []


class TestTwoCopySync:
    def test_sync_cost_equals_preallocated_bytes_over_link(self):
        """The pinned profiling copies of preallocated tensors reconcile
        once, at link bandwidth (§V)."""
        graph, machine, policy, executor, results = gpu_run(steps=3)
        sync_bytes = sum(t.nbytes for t in graph.preallocated())
        expected = sync_bytes / GPU_HM.promote_bandwidth
        first_managed = results[2]
        assert first_managed.stall_time >= expected * 0.99

    def test_sync_not_repeated(self):
        graph, machine, policy, executor, results = gpu_run(steps=4)
        sync_bytes = sum(t.nbytes for t in graph.preallocated())
        expected = sync_bytes / GPU_HM.promote_bandwidth
        steady = results[3]
        # Later managed steps do not pay the reconciliation again.
        assert steady.stall_time < results[2].stall_time
        assert steady.stall_time < expected


class TestHotnessOrderedPrefetch:
    def test_prefetch_issues_hottest_tensors_first(self):
        """§IV-D: migration follows descending access count, so if fast
        memory runs out mid-prefetch, what is left behind is the coldest."""
        graph = build_model("dcgan", batch_size=512)
        machine = Machine.for_platform(GPU_HM, fast_capacity=2 * 1024**3)
        policy = SentinelGPUPolicy(SentinelConfig(warmup_steps=1))
        issued = []  # (interval boundary sequence of hotness values)
        original = policy._promote_with_headroom

        def spy(runs, now, headroom):
            if policy.profile is not None and policy.allocator is not None:
                hotness = []
                for run in runs:
                    users = policy.allocator.users_of(run)
                    touches = [
                        policy.profile.tensors[tid].total_touches
                        for tid in users
                        if tid in policy.profile.tensors
                    ]
                    if touches:
                        hotness.append(max(touches))
                if len(hotness) >= 2:
                    issued.append(hotness)
            return original(runs, now, headroom)

        policy._promote_with_headroom = spy
        executor = Executor(graph, machine, policy)
        executor.run_steps(4)
        assert issued, "prefetch batches were observed"
        for hotness in issued:
            assert hotness == sorted(hotness, reverse=True)
