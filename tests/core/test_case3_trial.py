"""Case 3 and the test-and-trial algorithm (§IV-D), forced deterministically.

Throttling the promote channel guarantees prefetches cannot finish before
their interval starts, so Case 3 occurs on demand and the trial state
machine can be observed end to end.
"""

import dataclasses

import pytest

from repro.core.runtime import MANAGED, SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model

#: Promote so slow that any nontrivial prefetch is still in flight when its
#: interval begins.
THROTTLED = dataclasses.replace(
    OPTANE_HM, promote_bandwidth=2e7, demote_bandwidth=2e7
)


def throttled_run(steps=8, test_and_trial=True):
    graph = build_model("dcgan", batch_size=64)
    machine = Machine.for_platform(
        THROTTLED, fast_capacity=int(graph.peak_memory_bytes() * 0.3)
    )
    policy = SentinelPolicy(
        SentinelConfig(warmup_steps=1, test_and_trial=test_and_trial)
    )
    executor = Executor(graph, machine, policy)
    results = executor.run_steps(steps)
    return graph, machine, policy, results


class TestCase3:
    def test_case3_occurs_under_throttled_migration(self):
        _, _, policy, _ = throttled_run()
        assert policy.mode == MANAGED
        assert policy.case3_occurrences > 0

    def test_trial_states_reach_decisions(self):
        _, _, policy, _ = throttled_run()
        assert policy._case3, "trials were opened"
        decided = [s for s in policy._case3.values() if s.status == "decided"]
        assert decided, "at least one trial ran both steps and decided"
        for state in decided:
            assert state.choice in ("wait", "leave")
            assert state.wait_duration is not None
            assert state.leave_duration is not None

    def test_decision_picks_the_faster_measured_step(self):
        _, _, policy, _ = throttled_run()
        for state in policy._case3.values():
            if state.status != "decided":
                continue
            if state.choice == "wait":
                assert state.wait_duration <= state.leave_duration
            else:
                assert state.leave_duration < state.wait_duration

    def test_leave_decision_skips_future_prefetch(self):
        _, _, policy, _ = throttled_run()
        for interval, state in policy._case3.items():
            if state.status == "decided" and state.choice == "leave":
                assert interval in policy._skip_prefetch

    def test_trials_serialized_one_at_a_time(self):
        """Concurrent trials would pollute each other's step-duration
        measurements; the runtime serializes them."""
        _, _, policy, _ = throttled_run(steps=6)
        in_flight = [
            s
            for s in policy._case3.values()
            if s.status in ("trial_wait", "trial_leave")
        ]
        assert len(in_flight) <= 1

    def test_trial_steps_counted_for_overhead(self):
        _, _, policy, _ = throttled_run()
        assert policy.trial_steps_used >= 1
        assert policy.overhead_steps == (
            policy.profiling_steps_used + policy.trial_steps_used
        )

    def test_without_trial_every_case3_waits(self):
        _, _, policy, results = throttled_run(test_and_trial=False)
        assert policy.case3_occurrences > 0
        assert not policy._case3  # no trial state ever created
        # Waiting shows up as exposed stall.
        assert any(r.stall_time > 0 for r in results[2:])

    def test_steady_state_after_decisions(self):
        """Once every trial has settled, step times stabilize."""
        _, _, policy, results = throttled_run(steps=10)
        last = [r.duration for r in results[-2:]]
        assert last[0] == pytest.approx(last[1], rel=0.05)
