"""Profile data model queries."""

import pytest

from repro.core.profile import Profile, TensorProfile


def record(tid, nbytes=1000, alloc=0, free=0, touches=None, preallocated=False):
    return TensorProfile(
        tid=tid,
        name=f"t{tid}",
        nbytes=nbytes,
        alloc_layer=alloc if not preallocated else -1,
        free_layer=None if preallocated else free,
        preallocated=preallocated,
        touches_by_layer=dict(touches or {}),
    )


def make_profile(tensors, num_layers=4, short_bytes=None):
    return Profile(
        graph_name="g",
        signature=(),
        num_layers=num_layers,
        page_size=4096,
        tensors={t.tid: t for t in tensors},
        layer_fast_times=[0.1] * num_layers,
        layer_short_lived_bytes=short_bytes or [0] * num_layers,
    )


class TestTensorProfile:
    def test_short_lived_classification(self):
        assert record(0, alloc=1, free=1).short_lived
        assert not record(0, alloc=1, free=2).short_lived
        assert not record(0, preallocated=True).short_lived

    def test_next_touch_after(self):
        r = record(0, touches={1: 2, 3: 1, 5: 1})
        assert r.next_touch_after(0) == 1
        assert r.next_touch_after(1) == 3
        assert r.next_touch_after(5) is None

    def test_touched_in(self):
        r = record(0, touches={2: 1, 6: 1})
        assert r.touched_in(0, 2)
        assert r.touched_in(3, 6)
        assert not r.touched_in(3, 5)

    def test_lifetime_key_groups_identical_lifetimes(self):
        assert record(0, alloc=1, free=3).lifetime_key() == record(
            1, alloc=1, free=3
        ).lifetime_key()
        assert record(0, alloc=1, free=3).lifetime_key() != record(
            1, alloc=1, free=4
        ).lifetime_key()


class TestProfileQueries:
    def test_partitions(self):
        short = record(0, alloc=0, free=0)
        long = record(1, alloc=0, free=2)
        profile = make_profile([short, long])
        assert [t.tid for t in profile.short_lived_tensors()] == [0]
        assert [t.tid for t in profile.long_lived_tensors()] == [1]

    def test_rs_near_constant_in_interval_length(self):
        """The paper's observation: RS barely varies with MIL because it is
        a per-layer peak, not a sum."""
        profile = make_profile([], num_layers=6, short_bytes=[10, 40, 20, 40, 10, 5])
        assert profile.rs(1) == 40
        assert profile.rs(2) == 40
        assert profile.rs(6) == 40

    def test_long_lived_bytes_touched_in(self):
        long_a = record(1, nbytes=100, alloc=0, free=3, touches={0: 1, 3: 1})
        long_b = record(2, nbytes=50, alloc=1, free=3, touches={1: 1})
        short = record(3, nbytes=10, alloc=2, free=2, touches={2: 5})
        profile = make_profile([long_a, long_b, short])
        assert profile.long_lived_bytes_touched_in(0, 1) == 150
        assert profile.long_lived_bytes_touched_in(2, 2) == 0  # short excluded
        assert profile.long_lived_bytes_touched_in(3, 3) == 100

    def test_memory_overhead(self):
        profile = make_profile([])
        profile.packed_peak_bytes = 100
        profile.profiled_peak_bytes = 102
        assert profile.memory_overhead == pytest.approx(0.02)

    def test_hotness_rank_orders_descending(self):
        cold = record(0, touches={0: 1})
        hot = record(1, touches={0: 50, 1: 60})
        profile = make_profile([cold, hot])
        ranks = profile.hotness_rank()
        assert ranks[1] == 0
        assert ranks[0] == 1

    def test_interval_fast_time(self):
        profile = make_profile([], num_layers=4)
        assert profile.interval_fast_time([0, 1]) == pytest.approx(0.2)
