#!/usr/bin/env python
"""Inside the migration-interval optimizer (Eq. 1 and Eq. 2, Figure 4/5).

For one model at a constrained fast-memory size, show what the optimizer
sees: per-candidate feasibility under the space constraint, the estimated
exposed migration time, and — for the chosen interval length — the
per-interval demand against capacity.

Usage::

    python examples/interval_planner_demo.py [model] [fast_fraction]
"""

import sys

from repro.core import DynamicProfiler, choose_interval_length
from repro.core.interval import evaluate_interval_length
from repro.harness import format_table
from repro.harness.report import format_bars, mib
from repro.mem import OPTANE_HM
from repro.models import build_model


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet32"
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.16

    graph = build_model(model)
    capacity = int(graph.peak_memory_bytes() * fraction)
    profile = DynamicProfiler(OPTANE_HM).run(graph).profile
    bandwidth = OPTANE_HM.promote_bandwidth

    rows = []
    for mil in range(1, 13):
        plan = evaluate_interval_length(profile, mil, capacity, bandwidth)
        rows.append(
            (
                mil,
                "yes" if plan.feasible else "NO",
                f"{mib(plan.reserved_short_bytes):.1f}",
                f"{mib(max(plan.tensor_bytes)):.0f}",
                f"{plan.estimated_exposure * 1e3:.1f}",
            )
        )
    print(
        format_table(
            ("MIL", "Eq.1 feasible", "RS MiB", "worst interval MiB", "est. exposure ms"),
            rows,
            title=f"{model}: candidate interval lengths at fast = "
            f"{fraction:.0%} of peak ({mib(capacity):.0f} MiB)",
        )
    )

    chosen = choose_interval_length(profile, capacity, bandwidth)
    print(
        f"\nchosen MIL = {chosen.interval_length} "
        f"({chosen.num_intervals} intervals per step)\n"
    )
    print(
        format_bars(
            "per-interval long-lived demand (MiB) — capacity line is "
            f"{mib(capacity - chosen.reserved_short_bytes):.0f}",
            [
                (f"I{i}", mib(demand))
                for i, demand in enumerate(chosen.tensor_bytes)
            ][:24],
        )
    )


if __name__ == "__main__":
    main()
