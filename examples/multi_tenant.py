#!/usr/bin/env python
"""Multi-tenant training: co-schedule two models on one memory system.

Runs each workload alone, then together on a machine with the *same* fast
capacity, so the only difference is sharing — channel queueing and
capacity pressure are emergent from the discrete-event engine, not
modelled (DESIGN.md §9)::

    python examples/multi_tenant.py [model_a] [model_b] [policy] [fast_fraction]

Prints the isolated-vs-co-scheduled slowdown per workload, machine
aggregates (makespan, throughput, Jain's fairness), and where the queueing
actually happened.
"""

import sys

from repro.harness import format_table, run_policy
from repro.harness.cluster import WorkloadSpec, run_concurrent
from repro.harness.report import mib
from repro.models.zoo import build_model


def main() -> None:
    model_a = sys.argv[1] if len(sys.argv) > 1 else "dcgan"
    model_b = sys.argv[2] if len(sys.argv) > 2 else "lstm"
    policy = sys.argv[3] if len(sys.argv) > 3 else "sentinel"
    fraction = float(sys.argv[4]) if len(sys.argv) > 4 else 0.2

    # Matched capacity: size the fast tier once, from the combined peak,
    # and use that same budget for the isolated baselines.  Comparing
    # against per-model 20%-of-own-peak machines would conflate sharing
    # with sizing.
    models = (model_a, model_b)
    combined_peak = sum(build_model(m).peak_memory_bytes() for m in models)
    cap = int(combined_peak * fraction)

    isolated = {
        model: run_policy(policy, model=model, fast_capacity=cap).step_time
        for model in set(models)
    }

    specs = [
        WorkloadSpec(name=f"{model}-{i}", model=model, policy=policy)
        for i, model in enumerate(models)
    ]
    report = run_concurrent(specs, fast_capacity=cap)

    rows = []
    for spec, workload in zip(specs, report.workloads):
        alone = isolated[spec.model]
        rows.append(
            (
                workload.name,
                f"{alone:.4f}",
                f"{workload.steady_step_time:.4f}",
                f"{workload.steady_step_time / alone:.2f}x",
                f"{workload.steps_per_second:.2f}",
            )
        )
    print(
        format_table(
            ("workload", "alone (s)", "shared (s)", "slowdown", "steps/s"),
            rows,
            title=f"{model_a} + {model_b} under {policy} — "
            f"fast = {fraction:.0%} of combined peak ({mib(cap):.0f} MiB)",
        )
    )

    print(
        f"\nmakespan {report.makespan:.4f}s | aggregate "
        f"{report.aggregate_steps_per_second:.2f} steps/s | "
        f"fairness {report.fairness:.3f} | "
        f"migrated {mib(report.promoted_bytes + report.demoted_bytes):.0f} MiB"
    )
    for name in sorted(report.channel_queue_delay):
        delay = report.channel_queue_delay[name]
        busy = report.channel_busy[name]
        print(
            f"  {name:>15}: busy {busy:.3f}s, "
            f"mean queueing delay {delay * 1e3:.2f}ms"
        )
    print(
        "\nSlowdowns above 1.00x are pure contention: same fast-tier bytes, "
        "same models, the tenants just queue behind each other's transfers."
    )


if __name__ == "__main__":
    main()
