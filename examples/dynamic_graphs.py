#!/usr/bin/env python
"""Dynamic input shapes without re-profiling every step (paper §IV-E).

A language model sees variable sequence lengths; each length is a different
dataflow graph.  Sentinel bucketizes the observed lengths (at most 10
buckets), profiles each bucket once, and dispatches every step to its
bucket's managed runtime — the profiling cost stays a handful of steps no
matter how many millions of steps follow.

Usage::

    python examples/dynamic_graphs.py
"""

import random

from repro.core.buckets import BucketedSentinel, bucketize
from repro.core.runtime import SentinelConfig
from repro.harness import format_table
from repro.mem import OPTANE_HM
from repro.models.lstm import build_lstm


def main() -> None:
    rng = random.Random(42)
    # A day of traffic: sequence lengths skewed toward short requests.
    observed = [rng.choice((8, 8, 8, 12, 16, 16, 24, 40, 48)) for _ in range(500)]
    bounds = bucketize(observed)
    print(f"observed {len(set(observed))} distinct lengths -> buckets {bounds}\n")

    trainer = BucketedSentinel(
        OPTANE_HM,
        builder=lambda seq: build_lstm(batch_size=16, seq=max(2, seq)),
        bucket_bounds=bounds,
        config=SentinelConfig(warmup_steps=1),
    )

    durations = {}
    for step, seq_len in enumerate(observed[:60]):
        result = trainer.run_step(seq_len)
        bucket = trainer.bucket_for(seq_len)
        durations.setdefault(bucket, []).append(result.duration)

    rows = []
    for bound in trainer.bounds:
        series = durations.get(bound, [])
        if not series:
            rows.append((bound, 0, "-", "-"))
            continue
        rows.append(
            (
                bound,
                len(series),
                f"{max(series) * 1e3:.1f}",
                f"{series[-1] * 1e3:.1f}",
            )
        )
    print(
        format_table(
            ("bucket (seq len)", "steps", "first/profiled step (ms)", "steady step (ms)"),
            rows,
            title="Per-bucket steps: one expensive profiled step, then managed",
        )
    )
    print(
        f"\nbuckets profiled: {trainer.profiled_buckets}; total overhead "
        f"steps: {trainer.overhead_steps():.0f} — amortized over millions of "
        "training steps, <1% (paper §VII-B)."
    )


if __name__ == "__main__":
    main()
