#!/usr/bin/env python
"""Quickstart: train ResNet-32 on simulated DRAM+Optane under every policy.

Reproduces the headline comparison of the paper in one command::

    python examples/quickstart.py [model] [fast_fraction]

Fast memory is sized as a fraction of the model's peak consumption (the
paper's default experiment gives Sentinel only 20%), and each policy's
steady-state step time, throughput, and migration volume are printed.
"""

import sys

from repro.harness import format_table, run_policy
from repro.harness.report import mib


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet32"
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    policies = [
        ("slow-only", None),
        ("first-touch", fraction),
        ("memory-mode", fraction),
        ("ial", fraction),
        ("autotm", fraction),
        ("sentinel", fraction),
        ("fast-only", None),
    ]

    rows = []
    baseline = None
    for name, frac in policies:
        metrics = run_policy(name, model=model, fast_fraction=frac)
        if baseline is None:
            baseline = metrics.step_time
        rows.append(
            (
                name,
                f"{metrics.step_time:.4f}",
                f"{baseline / metrics.step_time:.2f}x",
                f"{metrics.throughput:.1f}",
                f"{mib(metrics.migrated_bytes):.0f}",
                f"{metrics.stall_time:.4f}",
            )
        )

    print(
        format_table(
            ("policy", "step (s)", "vs slow-only", "samples/s", "migrated MiB", "exposed (s)"),
            rows,
            title=f"{model} — fast memory = {fraction:.0%} of peak "
            "(simulated DRAM + Optane)",
        )
    )
    print()
    print(
        "Sentinel should sit just under the fast-only ceiling while the "
        "static policies pay for their slow-memory traffic."
    )


if __name__ == "__main__":
    main()
