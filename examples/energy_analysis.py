#!/usr/bin/env python
"""Where do the Joules go? Energy accounting per memory-management policy.

§IV-C of the paper argues that moving short-lived tensors is "highly
inefficient in terms of both performance and energy efficiency"; this
example quantifies the claim on the simulated Optane machine and drills
into a trace to show which tensor kinds pay the slow-memory energy.

Usage::

    python examples/energy_analysis.py [model] [fast_fraction]
"""

import sys

from repro.dnn import Executor, Tracer
from repro.baselines.registry import make_policy
from repro.core.runtime import SentinelConfig
from repro.harness import format_table, run_policy
from repro.mem import Machine, OPTANE_ENERGY, OPTANE_HM, estimate_step_energy
from repro.models import build_model


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet32"
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    rows = []
    for policy in ("slow-only", "first-touch", "ial", "autotm", "sentinel"):
        frac = None if policy == "slow-only" else fraction
        metrics = run_policy(policy, model=model, fast_fraction=frac)
        energy = estimate_step_energy(metrics, OPTANE_ENERGY)
        rows.append(
            (
                policy,
                f"{metrics.step_time:.4f}",
                f"{energy.fast_access:.2f}",
                f"{energy.slow_access:.2f}",
                f"{energy.migration:.2f}",
                f"{energy.total:.2f}",
            )
        )
    print(
        format_table(
            ("policy", "step (s)", "fast J", "slow J", "migration J", "total J"),
            rows,
            title=f"Energy per training step — {model}, fast = {fraction:.0%} of peak",
        )
    )

    # Drill-down: trace one managed Sentinel step and attribute slow-memory
    # time (the energy-expensive accesses) by tensor kind.
    graph = build_model(model)
    machine = Machine.for_platform(
        OPTANE_HM, fast_capacity=int(graph.peak_memory_bytes() * fraction)
    )
    tracer = Tracer()
    policy = make_policy("sentinel", sentinel_config=SentinelConfig(warmup_steps=1))
    executor = Executor(graph, machine, policy, tracer=tracer)
    executor.run_steps(3)
    tracer.clear()
    executor.run_step()  # the traced, managed step

    totals = tracer.slow_time_by_kind()
    print(
        format_table(
            ("tensor kind", "slow-memory time (ms)"),
            [(kind, f"{seconds * 1e3:.2f}") for kind, seconds in sorted(totals.items())],
            title="\nSentinel's residual slow-memory time by tensor kind "
            "(short-lived temps should be ~absent: the reservation works)",
        )
    )


if __name__ == "__main__":
    main()
