#!/usr/bin/env python
"""How much larger can each GPU memory manager train? (Table V's question.)

Searches the maximum feasible batch size per policy on the simulated V100
(16 GB HBM + host memory over PCIe), then measures throughput at a shared
capacity-stressing batch.

Usage::

    python examples/gpu_batch_scaling.py [model]
"""

import sys

from repro.baselines import UnsupportedModelError
from repro.harness import format_table, max_batch_size, run_policy
from repro.harness.experiments import GPU_BATCHES
from repro.mem import GPU_HM

POLICIES = (
    ("fast-only", "plain TensorFlow"),
    ("unified-memory", "CUDA Unified Memory"),
    ("vdnn", "vDNN"),
    ("autotm", "AutoTM"),
    ("swapadvisor", "SwapAdvisor"),
    ("capuchin", "Capuchin"),
    ("sentinel-gpu", "Sentinel-GPU"),
)


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet200"

    from repro.harness.runner import OOM_ERRORS

    rows = []
    stress_batch = GPU_BATCHES.get(model, (None, None, 32))[-1]
    for policy, label in POLICIES:
        try:
            if policy == "unified-memory":
                best = "(host-bound)"  # paper: UM's ceiling is host memory
            else:
                best = max_batch_size(policy, model, GPU_HM, limit=1 << 15)
        except UnsupportedModelError:
            rows.append((label, "x", "x", "x"))
            continue
        try:
            metrics = run_policy(
                policy, model=model, batch_size=stress_batch, platform=GPU_HM
            )
            rows.append(
                (label, best, f"{metrics.throughput:.1f}", f"{metrics.stall_time:.2f}")
            )
        except OOM_ERRORS:
            # The stress batch exceeds this policy's ceiling (that is the
            # point of the max-batch column).
            rows.append((label, best, "oom", "oom"))

    print(
        format_table(
            ("policy", "max batch", f"samples/s @ batch {stress_batch}", "exposed (s)"),
            rows,
            title=f"{model} on simulated 16 GB V100 + host DRAM",
        )
    )


if __name__ == "__main__":
    main()
