#!/usr/bin/env python
"""Tensor-level dynamic profiling, the way Sentinel's profiling phase does it.

Runs one poisoned, page-aligned training step of a zoo model on the
simulated Optane platform and prints what the paper's characterization
section (§III) extracts from exactly this machinery: the tensor population
by lifetime and size, the hot/cold access-count distribution, and the
interval-model inputs (RS, per-interval migration demand).

Usage::

    python examples/profile_a_model.py [model] [batch_size]
"""

import sys

from repro.core import DynamicProfiler, choose_interval_length
from repro.harness import format_table
from repro.harness.report import mib
from repro.mem import OPTANE_HM
from repro.models import build_model


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet32"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else None

    graph = build_model(model, batch_size=batch)
    print(
        f"Profiling one training step of {graph.name} "
        f"(batch {graph.batch_size}, {graph.num_layers} layers, "
        f"{len(graph.tensors)} tensors)..."
    )
    run = DynamicProfiler(OPTANE_HM).run(graph)
    profile = run.profile

    tensors = list(profile.tensors.values())
    short = [t for t in tensors if t.short_lived]
    small = [t for t in short if t.nbytes < profile.page_size]
    hot = sorted(tensors, key=lambda t: -t.total_touches)[:8]

    print(
        format_table(
            ("tensor", "bytes", "lifetime (layers)", "accesses"),
            [
                (
                    t.name,
                    t.nbytes,
                    "weights" if t.preallocated else t.lifetime_layers,
                    t.total_touches,
                )
                for t in hot
            ],
            title="\nHottest tensors (Observation 2's >100-access set)",
        )
    )

    print(
        format_table(
            ("quantity", "value"),
            [
                ("short-lived tensors", f"{len(short) / len(tensors):.1%}"),
                ("small among short-lived", f"{len(small) / max(1, len(short)):.1%}"),
                ("profiling faults taken", profile.fault_count),
                ("profiling step duration", f"{run.step_result.duration:.3f} s"),
                ("profiling memory overhead", f"{profile.memory_overhead:.2%}"),
            ],
            title="\nObservation 1 and profiling overheads",
        )
    )

    peak = graph.peak_memory_bytes()
    plan = choose_interval_length(
        profile, fast_capacity=int(peak * 0.2), promote_bandwidth=OPTANE_HM.promote_bandwidth
    )
    print(
        format_table(
            ("quantity", "value"),
            [
                ("peak memory", f"{mib(peak):.0f} MiB"),
                ("chosen interval length (MIL)", plan.interval_length),
                ("intervals per step", plan.num_intervals),
                ("short-lived reservation RS", f"{mib(plan.reserved_short_bytes):.1f} MiB"),
                ("worst interval demand", f"{mib(max(plan.tensor_bytes)):.0f} MiB"),
                ("estimated exposed migration", f"{plan.estimated_exposure * 1e3:.1f} ms"),
            ],
            title="\nInterval plan at fast = 20% of peak (Eq. 1 / Eq. 2)",
        )
    )


if __name__ == "__main__":
    main()
