#!/usr/bin/env python
"""Bring your own model: build a training-step graph and let Sentinel run it.

Sentinel is graph-agnostic — it needs no knowledge of what your layers do,
only the ``add_layer()`` boundaries and the memory behaviour it profiles by
itself.  This example builds a small custom encoder-decoder from scratch
with :class:`repro.models.TrainStepBuilder`, then compares Sentinel against
the bounds on a constrained machine.

Usage::

    python examples/custom_model.py
"""

from repro.harness import format_table, run_policy
from repro.models import LayerCost, TrainStepBuilder

FP32 = 4


def build_autoencoder(batch_size: int = 64, width: int = 512):
    """A 6-layer autoencoder nobody in the zoo has ever heard of."""
    tb = TrainStepBuilder("autoencoder", batch_size, batch_size * 4096 * FP32)
    dims = (4096, width * 2, width, width // 2, width, width * 2, 4096)
    for index, (din, dout) in enumerate(zip(dims, dims[1:])):
        tb.add_layer(
            LayerCost(
                name=f"fc{index}",
                weight_bytes=din * dout * FP32,
                out_bytes=batch_size * dout * FP32,
                flops=2.0 * batch_size * din * dout,
                workspace_bytes=batch_size * dout * FP32,
                small_temps=10,
                saved_aux=2,
            )
        )
    return tb.finish()


def main() -> None:
    graph = build_autoencoder()
    peak = graph.peak_memory_bytes()
    print(
        f"Custom graph: {graph.num_layers} layers, {len(graph.tensors)} tensors, "
        f"peak {peak / 2**20:.1f} MiB\n"
    )

    rows = []
    for policy, fraction in (
        ("slow-only", None),
        ("sentinel", 0.25),
        ("fast-only", None),
    ):
        metrics = run_policy(policy, graph=build_autoencoder(), fast_fraction=fraction)
        rows.append(
            (
                policy,
                f"{metrics.step_time * 1e3:.2f}",
                f"{metrics.migrated_bytes / 2**20:.0f}",
                metrics.extras.get("interval_length", "-"),
            )
        )
    print(
        format_table(
            ("policy", "step (ms)", "migrated MiB", "interval length"),
            rows,
            title="Sentinel on a model it has never seen (fast = 25% of peak)",
        )
    )


if __name__ == "__main__":
    main()
