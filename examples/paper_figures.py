#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Equivalent to ``pytest benchmarks/ --benchmark-only`` without the assertion
layer: runs each experiment and prints (and optionally saves) the outputs.

Usage::

    python examples/paper_figures.py [output_dir]
"""

import pathlib
import sys
import time

from repro.harness import experiments as E

ARTIFACTS = (
    ("observations", E.characterization),
    ("table3", E.table3_models),
    ("fig5", E.fig5_interval_sweep),
    ("fig7", E.fig7_speedup),
    ("table4", E.table4_migrated),
    ("fig8", E.fig8_large_batch),
    ("fig9", E.fig9_bandwidth),
    ("fig10", E.fig10_sensitivity),
    ("fig11", E.fig11_resnet_scaling),
    ("table5", E.table5_max_batch),
    ("fig12", E.fig12_gpu_throughput),
    ("fig13", E.fig13_breakdown),
)


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    for name, function in ARTIFACTS:
        started = time.time()
        result = function()
        elapsed = time.time() - started
        print(f"\n{'=' * 72}\n[{name}] ({elapsed:.1f}s)\n")
        print(result["text"])
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(result["text"] + "\n")
    print(f"\nDone — {len(ARTIFACTS)} artifacts regenerated.")


if __name__ == "__main__":
    main()
