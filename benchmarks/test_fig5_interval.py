"""E3 — Figure 5: performance vs migration interval length (ResNet-32).

The paper reports a 21% spread over interval lengths 5-11 with an interior
optimum at 8 (on their layer annotation).  We sweep the interval length at
a constrained fast-memory size and assert the shape: the choice matters (a
measurable spread) and the optimizer's pick is at or near the best measured
length.
"""

from conftest import run_once

from repro.harness.experiments import fig5_interval_sweep
from repro.harness.runner import run_policy


def test_fig5_interval_sweep(benchmark, record_experiment):
    result = run_once(
        benchmark,
        fig5_interval_sweep,
        model="resnet32",
        fast_fraction=0.2,
        lengths=tuple(range(1, 13)),
    )
    record_experiment("fig5_interval_sweep", result)

    points = dict(result["points"])
    # The interval length is a real knob: the spread across candidates is
    # measurable (paper: 21% between lengths 5 and 11).
    assert result["variance"] > 0.03

    # The model-chosen interval length performs within a few percent of the
    # best length found by exhaustive measurement — the point of Eq. 1/2 is
    # to avoid that exhaustive search.
    chosen = run_policy("sentinel", model="resnet32", fast_fraction=0.2)
    best_time = result["best"][1]
    assert chosen.step_time <= best_time * 1.08
