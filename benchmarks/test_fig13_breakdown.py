"""E12 — Figure 13: critical-path breakdown and the Sentinel ablation.

Per policy: exposed migration time and recomputation time as shares of the
step.  Paper claims: Capuchin spends ~11% of the step recomputing while
Sentinel recomputes nothing; vDNN exposes ~3x more migration than
Sentinel-GPU; and each Sentinel mechanism helps — "direct migration" <
"+ determined MI" < full Sentinel.
"""

import pytest
from conftest import run_once

from repro.harness.experiments import fig13_breakdown


def test_fig13(benchmark, record_experiment):
    result = run_once(benchmark, fig13_breakdown)
    record_experiment("fig13_breakdown", result)

    for model, per_model in result["records"].items():
        full = per_model["sentinel (all)"]

        # The trace-derived critical-path attribution must agree with the
        # executor's own counters on the measured step: same exposed stall,
        # and the exclusive components cover the whole step.
        attribution = per_model["attribution"]
        assert attribution["trace_stall"] == pytest.approx(
            attribution["counter_stall"], abs=1e-9
        ), model
        component_sum = sum(
            attribution[key]
            for key in (
                "compute",
                "migration_stall",
                "channel_contention",
                "fault",
                "pressure_reclaim",
                "idle",
            )
        )
        assert component_sum == pytest.approx(
            attribution["step_time"], abs=1e-9
        ), model
        det_mi = per_model["sentinel (det. MI)"]
        direct = per_model["sentinel (direct)"]

        # The ablation ladder: each mechanism monotonically helps
        # (small tolerance — the mechanisms interact).
        assert full["step_time"] <= det_mi["step_time"] * 1.10, model
        assert det_mi["step_time"] <= direct["step_time"] * 1.10, model

        # Sentinel never recomputes.
        assert full["recompute"] == 0.0

        # vDNN (when applicable) exposes more migration than full Sentinel.
        if "vdnn" in per_model:
            assert (
                per_model["vdnn"]["exposed_migration"]
                > full["exposed_migration"]
            ), model

    # Capuchin recomputes on at least one workload (paper: ~11% of the
    # step); whether a given model's tensors qualify depends on its
    # swap-vs-recompute arithmetic.
    recomputes = [
        per_model["capuchin"]["recompute"]
        for per_model in result["records"].values()
        if "capuchin" in per_model
    ]
    assert any(r > 0 for r in recomputes)
