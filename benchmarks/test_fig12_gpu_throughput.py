"""E11 — Figure 12: GPU training throughput, normalized by Unified Memory.

Paper claims (averages over models/batches): Sentinel-GPU achieves
1.1-7.8x over UM, +2x over vDNN, +65% over SwapAdvisor, +17% over AutoTM,
+16% over Capuchin.  We assert the ordering — Sentinel on top, UM at the
bottom — on the capacity-stressed batches where policies differ.
"""

import statistics

from conftest import run_once

from repro.harness.experiments import GPU_BATCHES, fig12_gpu_throughput


def test_fig12(benchmark, record_experiment):
    result = run_once(benchmark, fig12_gpu_throughput)
    record_experiment("fig12_gpu_throughput", result)

    records = result["records"]
    sentinel_vs = {policy: [] for policy in ("unified-memory", "capuchin", "swapadvisor", "autotm", "vdnn")}
    for (model, batch), row in records.items():
        sentinel = row["sentinel-gpu"]
        assert sentinel is not None and sentinel > 0
        # Sentinel never loses to UM.
        assert sentinel >= row["unified-memory"] * 0.98, (model, batch)
        for policy, ratios in sentinel_vs.items():
            if row.get(policy):
                ratios.append(sentinel / row[policy])

    # On average over the sweep, Sentinel leads every baseline.
    for policy, ratios in sentinel_vs.items():
        assert ratios, policy
        assert statistics.mean(ratios) > 1.0, policy

    # The UM advantage is large on oversubscribed batches (paper: up to 7.8x).
    biggest = [
        records[(model, batches[-1])]
        for model, batches in GPU_BATCHES.items()
    ]
    um_ratios = [
        row["sentinel-gpu"] / row["unified-memory"]
        for row in biggest
        if row["unified-memory"]
    ]
    assert max(um_ratios) > 2.0
