"""Validation — the Eq. 1/2 performance model against measured execution.

Sentinel's interval choice rests on an analytic estimate of exposed
migration time.  The paper argues the model is good enough to replace
trial-steps; here we check that directly: across interval lengths on a
constrained machine, the model's per-plan exposure estimate must rank the
candidates consistently with their measured step times (positive rank
correlation), and the model's chosen plan must execute within a few percent
of the best measured candidate.
"""

import scipy.stats

from conftest import run_once

from repro.core.interval import evaluate_interval_length
from repro.core.profiler import DynamicProfiler
from repro.core.runtime import SentinelConfig
from repro.harness.report import format_table
from repro.harness.runner import EXPERIMENT_WARMUP_STEPS, run_policy
from repro.mem.platforms import OPTANE_HM
from repro.models import build_model

MODEL = "resnet32"
BATCH = 256
FRACTION = 0.16
LENGTHS = tuple(range(1, 11))


def run_validation():
    graph = build_model(MODEL, batch_size=BATCH)
    peak = graph.peak_memory_bytes()
    capacity = int(peak * FRACTION)
    profile = DynamicProfiler(OPTANE_HM).run(build_model(MODEL, batch_size=BATCH)).profile

    rows = []
    estimates = []
    measured = []
    for length in LENGTHS:
        plan = evaluate_interval_length(
            profile, length, capacity, OPTANE_HM.promote_bandwidth
        )
        metrics = run_policy(
            "sentinel",
            graph=build_model(MODEL, batch_size=BATCH),
            fast_capacity=capacity,
            sentinel_config=SentinelConfig(
                warmup_steps=EXPERIMENT_WARMUP_STEPS, fixed_interval_length=length
            ),
        )
        estimates.append(plan.estimated_exposure)
        measured.append(metrics.step_time)
        rows.append(
            (
                length,
                "yes" if plan.feasible else "no",
                f"{plan.estimated_exposure * 1e3:.1f}",
                f"{metrics.step_time:.4f}",
            )
        )
    correlation = scipy.stats.spearmanr(estimates, measured).statistic
    text = format_table(
        ("MIL", "Eq.1 feasible", "est. exposure (ms)", "measured step (s)"),
        rows,
        title=f"Performance-model validation — {MODEL}@{BATCH}, fast = "
        f"{FRACTION:.0%} of peak (Spearman rho = {correlation:.2f})",
    )
    return {
        "estimates": estimates,
        "measured": measured,
        "correlation": correlation,
        "text": text,
    }


def test_perfmodel_validation(benchmark, record_experiment):
    result = run_once(benchmark, run_validation)
    record_experiment("perfmodel_validation", result)

    # The model must at least rank candidates usefully...
    assert result["correlation"] > 0.3

    # ...and the optimizer's pick (argmin estimate among feasible) must
    # execute within a few percent of the best measured candidate.
    chosen = run_policy(
        "sentinel",
        graph=build_model(MODEL, batch_size=BATCH),
        fast_capacity=int(build_model(MODEL, batch_size=BATCH).peak_memory_bytes() * FRACTION),
        sentinel_config=SentinelConfig(warmup_steps=EXPERIMENT_WARMUP_STEPS),
    )
    assert chosen.step_time <= min(result["measured"]) * 1.08
