"""E10 — Table V: maximum batch size on fixed GPU memory.

Paper claims: Sentinel-GPU trains ~4.18x larger batches than plain
TensorFlow, ~1.9x larger than vDNN, ~1.1x larger than SwapAdvisor, and is
comparable to AutoTM and Capuchin (all three migrate aggressively); vDNN
fails outright on LSTM and BERT.
"""

from conftest import run_once

from repro.harness.experiments import table5_max_batch


def test_table5(benchmark, record_experiment):
    result = run_once(benchmark, table5_max_batch)
    record_experiment("table5_maxbatch", result)

    records = result["records"]

    for model, row in records.items():
        sentinel = row["sentinel-gpu"]
        plain = row["fast-only"]
        assert sentinel >= 2 * max(1, plain), model  # paper: 4.18x average

        if model in ("lstm", "bert-large"):
            assert row["vdnn"] is None, "vDNN cannot run recurrent models"
        else:
            assert row["vdnn"] is not None
            assert sentinel >= row["vdnn"], model  # paper: 1.9x on CNNs

        # AutoTM and Capuchin offload as aggressively as Sentinel: their
        # batch ceilings are comparable (paper: "achieve a comparable
        # maximum batch size").  Capuchin's recomputation lets it *discard*
        # memory entirely, buying it an edge on activation-dominated
        # models, so the band is asymmetric.
        for policy in ("autotm", "capuchin"):
            assert row[policy] >= plain, (model, policy)
            assert sentinel >= 0.6 * row[policy], (model, policy)

        # SwapAdvisor optimizes throughput, not memory: it trails Sentinel.
        assert sentinel >= 0.9 * row["swapadvisor"], model
