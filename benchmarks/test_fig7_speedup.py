"""E4 — Figure 7: speedup over slow-only at fast = 20% of peak.

The paper's headline CPU result: Sentinel approaches the fast-memory-only
ceiling (9% average gap) while consistently beating IAL (+37% avg) and
AutoTM (+17% avg).  We assert the ordering and rough factors.
"""

import statistics

from conftest import run_once

from repro.harness.experiments import fig7_speedup


def test_fig7(benchmark, record_experiment):
    result = run_once(benchmark, fig7_speedup)
    record_experiment("fig7_speedup", result)

    sentinel_gaps = []
    for model, row in result["records"].items():
        # Ordering: Sentinel fastest among the managed policies, fast-only
        # remains the ceiling.
        assert row["sentinel"] <= row["ial"] * 1.02, model
        assert row["sentinel"] <= row["autotm"] * 1.02, model
        assert row["fast_time"] <= row["sentinel"], model
        # Everyone beats slow-only.
        for policy in ("ial", "autotm", "sentinel"):
            assert row[policy] < row["slow_time"], (model, policy)
        sentinel_gaps.append(row["sentinel"] / row["fast_time"])

    # Average gap to fast-only stays moderate (paper: 1.09; simulator
    # substrate tolerance: < 1.6).
    assert statistics.mean(sentinel_gaps) < 1.6

    # IAL and AutoTM trail Sentinel on average (paper: 37% / 17%).
    ial_gap = statistics.mean(
        row["ial"] / row["sentinel"] for row in result["records"].values()
    )
    autotm_gap = statistics.mean(
        row["autotm"] / row["sentinel"] for row in result["records"].values()
    )
    assert ial_gap > 1.05
    assert autotm_gap > 1.05
