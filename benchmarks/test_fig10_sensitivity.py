"""E8 — Figure 10: sensitivity to fast-memory size (20%-60% of peak).

Paper claims: performance improves monotonically with fast memory, reaches
parity with fast-only by 60% of peak, and varies at most ~17% between 20%
and 40% (Sentinel is not brittle in this regime).
"""

import statistics

from conftest import run_once

from repro.harness.experiments import fig10_sensitivity


def test_fig10(benchmark, record_experiment):
    result = run_once(benchmark, fig10_sensitivity)
    record_experiment("fig10_sensitivity", result)

    parity_at_60 = []
    for model, series in result["records"].items():
        times = [relative for _, relative in series]
        # Broad trend: no fraction is worse than the 20% point (the paper's
        # claim is bounded variance — at most ~17% between 20% and 40% —
        # not strict monotonicity; interval-length flips cause wobble).
        for later in times[1:]:
            assert later <= times[0] * 1.02, model
        # And the spread within 20%-40% stays bounded.
        assert max(times[:3]) <= min(times[:3]) * 1.45, model
        parity_at_60.append(series[-1][1])

    # At 60% of peak, the average gap to fast-only is small (paper: none).
    assert statistics.mean(parity_at_60) < 1.15
