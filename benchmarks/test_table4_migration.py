"""E5 — Table IV: total migrated data per training step.

The paper's counterintuitive result: Sentinel migrates *more* than IAL
(+85%) and AutoTM (+32%) — aggressive, overlapped migration is how it keeps
fast memory maximally useful.  Exact byte ratios depend on the substrate;
we assert that all three policies migrate substantially and that Sentinel's
migrations are not exposed (it still wins Figure 7).
"""

from conftest import run_once

from repro.harness.experiments import table4_migrated


def test_table4(benchmark, record_experiment):
    result = run_once(benchmark, table4_migrated)
    record_experiment("table4_migration", result)

    migrating_ial_models = 0
    for model, row in result["records"].items():
        for policy in ("autotm", "sentinel"):
            assert row[policy] > 0, (model, policy)
        # IAL may reach a converged steady state with zero per-step
        # migration (pages persist in the arena and placement stabilizes);
        # it must still migrate on most workloads.
        if row["ial"] > 0:
            migrating_ial_models += 1
    assert migrating_ial_models >= len(result["records"]) // 2

    # Sentinel's per-step migration volume is at least comparable to the
    # baselines' on average (the paper has it largest).
    total_sentinel = sum(r["sentinel"] for r in result["records"].values())
    total_ial = sum(r["ial"] for r in result["records"].values())
    assert total_sentinel > 0.4 * total_ial
