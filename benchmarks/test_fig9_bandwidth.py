"""E7 — Figure 9: memory bandwidth during ResNet-32 training, IAL vs Sentinel.

The paper: Sentinel drives ~7.3x more fast-memory traffic than IAL and less
slow-memory traffic — the signature of serving the working set from DRAM.
"""

from conftest import run_once

from repro.harness.experiments import fig9_bandwidth


def test_fig9(benchmark, record_experiment):
    result = run_once(benchmark, fig9_bandwidth)
    record_experiment("fig9_bandwidth", result)

    sentinel = result["records"]["sentinel"]
    ial = result["records"]["ial"]

    # Sentinel serves more traffic from fast memory than IAL...
    assert result["fast_ratio"] > 1.2
    # ...and pushes less onto slow memory.
    assert sentinel["slow_bw"] < ial["slow_bw"]
    # Fast-memory bandwidth dominates slow for Sentinel (paper's plot shape).
    assert sentinel["fast_bw"] > sentinel["slow_bw"]
