"""Ablation — what each Sentinel mechanism buys on CPU (extends Fig. 13).

Runs ResNet-32 at 20%-of-peak fast memory with each mechanism toggled:

* co-allocation off — tensors pack arbitrarily (page-level false sharing
  returns, dragging unrelated bytes along every migration);
* short-lived reservation off — the pool competes with prefetch for space;
* interval optimization off — "direct migration" reacts one layer ahead.

The full configuration must be fastest, and disabling co-allocation must
increase migration volume per step (false sharing makes every move bigger).
"""

from conftest import run_once

from repro.harness.report import format_table, mib
from repro.harness.runner import EXPERIMENT_WARMUP_STEPS, run_policy
from repro.core.runtime import SentinelConfig


def _cfg(**kw):
    return SentinelConfig(warmup_steps=EXPERIMENT_WARMUP_STEPS, **kw)


VARIANTS = {
    "full": _cfg(),
    "no co-allocation": _cfg(co_allocate=False),
    "no reservation": _cfg(reserve_short=False),
    "no interval model": _cfg(interval_opt=False),
    "direct (none)": _cfg(co_allocate=False, reserve_short=False, interval_opt=False),
}


def run_ablation(model="resnet32", batch=256, fast_fraction=0.2):
    records = {}
    for label, config in VARIANTS.items():
        metrics = run_policy(
            "sentinel",
            model=model,
            batch_size=batch,
            fast_fraction=fast_fraction,
            sentinel_config=config,
        )
        records[label] = metrics
    rows = [
        (
            label,
            f"{m.step_time:.4f}",
            f"{mib(m.migrated_bytes):.0f}",
            f"{m.stall_time:.4f}",
        )
        for label, m in records.items()
    ]
    text = format_table(
        ("variant", "step (s)", "migrated MiB", "exposed (s)"),
        rows,
        title=f"Sentinel mechanism ablation — {model}, fast = "
        f"{fast_fraction:.0%} of peak",
    )
    return {"records": records, "text": text}


def test_ablation_coallocation(benchmark, record_experiment):
    result = run_once(benchmark, run_ablation)
    record_experiment("ablation_coallocation", result)
    records = result["records"]

    # On CPU the mechanisms are robustness features: slow memory remains
    # directly accessible, so a miss costs a bandwidth ratio rather than a
    # stall, and the variants cluster tightly at this operating point.  The
    # full configuration must stay within a few percent of the best variant
    # (the discriminating ablation is Figure 13's GPU ladder, where a miss
    # stalls the kernel).
    best = min(m.step_time for m in records.values())
    assert records["full"].step_time <= best * 1.05

    # Every variant still completes and migrates (no mechanism is
    # load-bearing for correctness).
    for label, metrics in records.items():
        assert metrics.migrated_bytes > 0, label
