"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment from :mod:`repro.harness.experiments` exactly
once (the simulations are deterministic — repetition would only re-measure
Python overhead), prints the same rows/series the paper reports, and saves
the text under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir, capsys):
    """Print an experiment's text block; persist text + JSON to results/."""

    def _record(name: str, result: dict):
        import json

        from repro.harness.report import jsonable

        text = result["text"]
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        payload = {k: v for k, v in result.items() if k not in ("text", "profile")}
        (results_dir / f"{name}.json").write_text(
            json.dumps(jsonable(payload), indent=1, default=repr)
        )
        return result

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """pytest-benchmark wrapper for deterministic single-shot experiments."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
