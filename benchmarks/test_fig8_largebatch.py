"""E6 — Figure 8: large-batch training on a fixed-size DRAM.

Models whose peak exceeds DRAM: Sentinel beats first-touch NUMA (paper:
1.7x), Memory Mode (1.2x) and AutoTM (1.1x).  The model that fits (LSTM)
shows all policies converging — Sentinel's overhead is negligible when
migration is unnecessary.
"""

from conftest import run_once

from repro.harness.experiments import FIG8_DRAM_BYTES, fig8_large_batch


def test_fig8(benchmark, record_experiment):
    result = run_once(benchmark, fig8_large_batch)
    record_experiment("fig8_largebatch", result)

    for model, row in result["records"].items():
        oversubscribed = row["peak_bytes"] > FIG8_DRAM_BYTES
        if oversubscribed:
            # Sentinel wins against every non-adaptive policy.
            assert row["sentinel"] < row["first-touch"], model
            assert row["sentinel"] <= row["memory-mode"] * 1.05, model
            assert row["sentinel"] <= row["autotm"] * 1.05, model
        else:
            # Fits in DRAM: everything converges (paper: LSTM case shows
            # Sentinel's overhead is ignorable).
            base = row["first-touch"]
            for policy in ("memory-mode", "autotm", "sentinel"):
                assert abs(row[policy] - base) / base < 0.25, (model, policy)

    oversubscribed_models = [
        m for m, row in result["records"].items() if row["peak_bytes"] > FIG8_DRAM_BYTES
    ]
    assert len(oversubscribed_models) >= 3, "Figure 8 needs capacity pressure"
