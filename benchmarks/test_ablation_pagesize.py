"""Ablation — migration granularity (page size) sensitivity.

The paper's mechanisms are formulated at OS-page granularity; real systems
also migrate at huge-page (2 MiB) granularity, where false sharing is far
worse.  This ablation sweeps the platform page size and checks that

* Sentinel stays robust (its co-allocation groups tensors so that a page —
  of any size — holds same-lifetime data), while
* the page-oblivious active list (IAL) degrades as pages grow, because each
  promotion/demotion drags more unrelated bytes.
"""

import dataclasses

from conftest import run_once

from repro.harness.report import format_table
from repro.harness.runner import run_policy
from repro.mem.platforms import OPTANE_HM

PAGE_SIZES = (4096, 16384, 65536, 262144)


def run_pagesize_sweep(model="resnet32", batch=256, fast_fraction=0.2):
    records = {}
    for page_size in PAGE_SIZES:
        platform = dataclasses.replace(OPTANE_HM, page_size=page_size)
        row = {}
        for policy in ("ial", "sentinel"):
            metrics = run_policy(
                policy,
                model=model,
                batch_size=batch,
                platform=platform,
                fast_fraction=fast_fraction,
            )
            row[policy] = metrics.step_time
        records[page_size] = row
    rows = [
        (
            f"{page_size // 1024} KiB",
            f"{row['ial']:.4f}",
            f"{row['sentinel']:.4f}",
            f"{row['ial'] / row['sentinel']:.2f}x",
        )
        for page_size, row in records.items()
    ]
    text = format_table(
        ("page size", "IAL step (s)", "Sentinel step (s)", "IAL/Sentinel"),
        rows,
        title=f"Page-size ablation — {model}, fast = {fast_fraction:.0%} of peak",
    )
    return {"records": records, "text": text}


def test_ablation_pagesize(benchmark, record_experiment):
    result = run_once(benchmark, run_pagesize_sweep)
    record_experiment("ablation_pagesize", result)
    records = result["records"]

    # Sentinel stays within a modest band across page sizes...
    sentinel_times = [row["sentinel"] for row in records.values()]
    assert max(sentinel_times) < min(sentinel_times) * 1.6

    # ...and never loses to IAL at any granularity.
    for page_size, row in records.items():
        assert row["sentinel"] <= row["ial"] * 1.02, page_size
