"""E9 — Figure 11: minimum fast memory for fast-only parity vs ResNet depth.

The paper's scaling claim: as ResNet grows (peak memory grows quickly), the
fast memory Sentinel needs for parity grows much more slowly — deeper
models have proportionally more migration opportunity per byte of saved
state.
"""

from conftest import run_once

from repro.harness.experiments import fig11_resnet_scaling


def test_fig11(benchmark, record_experiment):
    result = run_once(
        benchmark, fig11_resnet_scaling, depths=(20, 32, 56, 110), batch_size=512
    )
    record_experiment("fig11_resnet_scaling", result)

    records = result["records"]
    # Peak memory grows with depth.
    peaks = [r["peak_bytes"] for r in records]
    assert peaks == sorted(peaks)

    # The required fast memory grows strictly slower than the peak: the
    # deepest model's min-fast/peak ratio is below the shallowest's.
    first_ratio = records[0]["min_fast_bytes"] / records[0]["peak_bytes"]
    last_ratio = records[-1]["min_fast_bytes"] / records[-1]["peak_bytes"]
    assert last_ratio <= first_ratio * 1.01

    # And in absolute terms the required fast memory is far below peak for
    # the deepest variant.
    assert records[-1]["min_fast_bytes"] < 0.8 * records[-1]["peak_bytes"]
