"""E2 / E13 — Table III: model configurations and Sentinel's overheads.

Regenerates the per-model rows: batch sizes, peak memory, tensor counts,
profiling + test-and-trial steps, profiling-phase memory overhead, and the
profiling step's slowdown.  §VII-B's runtime/memory-overhead claims are
asserted here: ~1-2 overhead steps amortized over a training run, and at
most a few percent of extra memory.
"""

from conftest import run_once

from repro.harness.experiments import table3_models


def test_table3(benchmark, record_experiment):
    result = run_once(benchmark, table3_models)
    record_experiment("table3_models", result)

    for record in result["records"]:
        # Exactly one profiling step; trials are rare (paper: 1.8 steps avg,
        # fewer than 10 Case-3 occurrences).
        assert record["profiling_steps"] == 1
        assert record["trial_steps"] <= 10
        # Profiling-phase memory overhead (paper: <= 2.4%).
        assert record["memory_overhead"] < 0.05
        # The poisoned step costs a small multiple of a normal step
        # (paper: up to ~5x).
        assert record["profiling_slowdown"] < 12

    overhead_steps = [
        r["profiling_steps"] + r["trial_steps"] for r in result["records"]
    ]
    assert sum(overhead_steps) / len(overhead_steps) < 5
