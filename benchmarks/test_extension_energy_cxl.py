"""Extensions — energy accounting and the CXL generalization.

Two forward-looking artifacts the paper gestures at but does not measure:

* **Energy** (§IV-C argues from it): per-step Joules for each CPU policy on
  the Optane platform.  Sentinel must spend less dynamic energy than the
  static policies — serving traffic from DRAM is cheaper per byte, and its
  migration surcharge is bounded.
* **CXL** (the post-Optane capacity tier): the same experiment on a
  CXL-attached expander.  Sentinel's mechanisms are device-agnostic, so the
  ordering must carry over unchanged.
"""

from conftest import run_once

from repro.harness.report import format_table
from repro.harness.runner import run_policy
from repro.mem.energy import OPTANE_ENERGY, estimate_step_energy
from repro.mem.platforms import CXL_HM

MODEL = "resnet32"
BATCH = 256
POLICIES = ("slow-only", "first-touch", "ial", "autotm", "sentinel", "fast-only")


def run_energy():
    records = {}
    rows = []
    for policy in POLICIES:
        fraction = None if policy in ("slow-only", "fast-only") else 0.2
        metrics = run_policy(
            policy, model=MODEL, batch_size=BATCH, fast_fraction=fraction
        )
        energy = estimate_step_energy(metrics, OPTANE_ENERGY)
        records[policy] = {"metrics": metrics, "energy": energy}
        rows.append(
            (
                policy,
                f"{metrics.step_time:.4f}",
                f"{energy.dynamic:.2f}",
                f"{energy.migration:.2f}",
                f"{energy.total:.2f}",
            )
        )
    text = format_table(
        ("policy", "step (s)", "dynamic J", "migration J", "total J"),
        rows,
        title=f"Energy per step — {MODEL}@{BATCH}, Optane platform",
    )
    return {"records": records, "text": text}


def run_cxl():
    records = {}
    rows = []
    for policy in POLICIES:
        fraction = None if policy in ("slow-only", "fast-only") else 0.2
        metrics = run_policy(
            policy,
            model=MODEL,
            batch_size=BATCH,
            platform=CXL_HM,
            fast_fraction=fraction,
        )
        records[policy] = metrics
        rows.append((policy, f"{metrics.step_time:.4f}"))
    base = records["slow-only"].step_time
    rows = [(name, step, f"{base / float(step):.2f}x") for name, step in rows]
    text = format_table(
        ("policy", "step (s)", "speedup"),
        rows,
        title=f"CXL generalization — {MODEL}@{BATCH}, fast = 20% of peak",
    )
    return {"records": records, "text": text}


def test_extension_energy(benchmark, record_experiment):
    result = run_once(benchmark, run_energy)
    record_experiment("extension_energy", result)
    records = result["records"]

    sentinel = records["sentinel"]["energy"]
    # Sentinel's dynamic energy beats every static CPU policy's.
    for policy in ("slow-only", "first-touch"):
        assert sentinel.dynamic < records[policy]["energy"].dynamic, policy
    # Total energy (including background power over the faster step) is the
    # lowest among the managed policies.
    for policy in ("slow-only", "first-touch", "ial", "autotm"):
        assert sentinel.total <= records[policy]["energy"].total * 1.02, policy


def test_extension_cxl(benchmark, record_experiment):
    result = run_once(benchmark, run_cxl)
    record_experiment("extension_cxl", result)
    records = result["records"]

    # The Optane ordering carries over to CXL unchanged.
    sentinel = records["sentinel"].step_time
    assert sentinel < records["ial"].step_time
    assert sentinel < records["autotm"].step_time
    assert sentinel < records["first-touch"].step_time
    assert records["fast-only"].step_time <= sentinel * 1.001
    # CXL's milder slow tier narrows the slow-only gap but does not
    # eliminate it.
    ratio = records["slow-only"].step_time / records["fast-only"].step_time
    assert 1.3 < ratio < 8.0
