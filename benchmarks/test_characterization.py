"""E1 — Observations 1-3 and the Figure 1/2 characterization (§III-B).

Regenerates, for ResNet-32: the short-lived/small tensor population, the
hot/cold access-count distribution, the page-level false-sharing
measurement, and the profiling overheads the characterization relies on.
"""

from conftest import run_once

from repro.harness.experiments import characterization


def test_characterization_resnet32(benchmark, record_experiment):
    result = run_once(benchmark, characterization, model="resnet32")
    record_experiment("characterization_resnet32", result)

    # Observation 1: a large majority of tensors is short-lived; nearly all
    # of those are smaller than a page (paper: 92% and 98%).
    assert result["short_fraction"] > 0.7
    assert result["small_of_short"] > 0.85

    # Observation 2: the >100-access hot set exists and is tiny in bytes
    # (paper: 4 MB, 0.2% of pages).
    assert result["hot_count"] >= 1
    assert result["hot_bytes"] < 0.05 * result["cold_bytes"]

    # Observation 3: page-level counting misclassifies some cold bytes as
    # hot under packed allocation.
    fs = result["false_sharing"]
    assert fs["page_cold_bytes"] <= fs["tensor_cold_bytes"]


def test_characterization_generalizes_beyond_resnet(benchmark, record_experiment):
    """The paper claims the observations hold across topologies; spot-check
    a recurrent model."""
    result = run_once(benchmark, characterization, model="lstm", batch_size=64)
    record_experiment("characterization_lstm", result)
    assert result["short_fraction"] > 0.7
    assert result["hot_count"] >= 1
